"""Statistical profiles of the SPEC CPU2006 / PARSEC workloads used by the paper.

The original evaluation replays Simics memory-write traces of twelve
write-intensive SPEC CPU2006 benchmarks plus PARSEC's ``canneal``.  Those
traces are not redistributable, so this package models each benchmark with a
*profile*: a distribution over memory-line content types (zero lines, narrow
integers, pointers, floating-point arrays, text, random data) plus the
per-write mutation behaviour (how many words of a line change per write-back).

The profiles are tuned to reproduce the trace properties the paper documents
and depends on:

* the strong bias of data symbols toward ``00`` and ``11`` (runs of zeros and
  of ones from small positive / negative integers);
* Word-Level Compression coverage above 90 % for k <= 6 most-significant bits
  and roughly 50 % for k in 7..9 (Figure 4);
* FPC+BDI coverage of roughly 30 % of lines (Figure 4);
* the split into high-memory-intensity (HMI) and low-memory-intensity (LMI)
  groups, where HMI benchmarks rewrite substantially more cells per request
  (Figures 8-10).

Absolute numbers will not match the authors' testbed, but the relative shapes
(which scheme wins, and by roughly how much) are preserved; EXPERIMENTS.md
records both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

#: Content types a generated memory line may have.
LINE_TYPES = (
    "zero",
    "sparse",
    "small_int",
    "small_neg_int",
    "mixed_int",
    "packed16",
    "pointer",
    "float64",
    "float32",
    "text",
    "random",
)

#: Kinds of value a rewritten word can receive on a write-back.
MUTATION_ACTIONS = (
    "same_type",   # redraw a nearby value of the line's content type
    "zero_fill",   # overwrite with zero (initialisation, freed objects)
    "ones_fill",   # overwrite with a small negative value (run of ones)
    "complement",  # sign change / negation of the previous value
    "type_change", # overwrite with a value drawn from the line-type mix
    "low_random",  # re-randomise only the low 32 bits
)

#: Default mutation mix (must sum to 1); profiles may override it.
DEFAULT_MUTATION_MIX: Dict[str, float] = {
    "same_type": 0.36,
    "zero_fill": 0.13,
    "ones_fill": 0.16,
    "complement": 0.11,
    "type_change": 0.13,
    "low_random": 0.11,
}


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic-trace profile of one benchmark.

    Parameters
    ----------
    name:
        Short benchmark name as used in the paper's figures.
    suite:
        ``"spec2006"`` or ``"parsec"``.
    memory_intensity:
        ``"high"`` or ``"low"`` (the HMI / LMI grouping of Figures 8-10).
    line_type_mix:
        Probability of each content type for a freshly generated line.
    magnitude_bits:
        ``(low, mid, high)`` weights of the three integer-magnitude bands used
        by the integer content types: values below 2^32 (deeply compressible),
        values below 2^56 (compressible at k <= 9) and values below 2^59
        (compressible only at k <= 6).  Controls the Figure 4 coverage curve.
    change_word_fraction:
        Average fraction of a line's eight words rewritten per write request;
        the main knob of per-request write energy (HMI vs LMI).
    mutation_mix:
        Distribution over the kinds of value a rewritten word receives (see
        :data:`MUTATION_ACTIONS`).  Real traces overwrite words with zero
        fills, negative values (runs of ones) and freshly allocated objects as
        well as nearby values of the same kind; this mix is what gives the
        written cells the 00/11 bias that coset coding exploits.
    """

    name: str
    suite: str
    memory_intensity: str
    line_type_mix: Mapping[str, float]
    magnitude_bits: Tuple[float, float, float] = (0.45, 0.35, 0.20)
    change_word_fraction: float = 0.5
    mutation_mix: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MUTATION_MIX)
    )

    def __post_init__(self) -> None:
        total = sum(self.line_type_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"line_type_mix of {self.name} must sum to 1 (got {total})")
        for line_type in self.line_type_mix:
            if line_type not in LINE_TYPES:
                raise ValueError(f"unknown line type {line_type!r} in profile {self.name}")
        mutation_total = sum(self.mutation_mix.values())
        if abs(mutation_total - 1.0) > 1e-6:
            raise ValueError(f"mutation_mix of {self.name} must sum to 1 (got {mutation_total})")
        for action in self.mutation_mix:
            if action not in MUTATION_ACTIONS:
                raise ValueError(f"unknown mutation action {action!r} in profile {self.name}")
        if self.memory_intensity not in ("high", "low"):
            raise ValueError("memory_intensity must be 'high' or 'low'")

    @property
    def is_high_intensity(self) -> bool:
        """``True`` for the HMI group of Figures 8-10."""
        return self.memory_intensity == "high"


def _mix(**kwargs: float) -> Dict[str, float]:
    return dict(kwargs)


#: Per-benchmark profiles, keyed by the short names used in the paper's plots.
PROFILES: Dict[str, BenchmarkProfile] = {
    # ----------------------- High memory intensity ----------------------- #
    "lesl": BenchmarkProfile(
        name="lesl", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.06, sparse=0.06, small_int=0.22, small_neg_int=0.09,
                           mixed_int=0.22, packed16=0.17, pointer=0.07, float64=0.05,
                           float32=0.02, text=0.02, random=0.02),
        magnitude_bits=(0.25, 0.45, 0.30), change_word_fraction=0.85,
    ),
    "milc": BenchmarkProfile(
        name="milc", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.05, sparse=0.05, small_int=0.21, small_neg_int=0.09,
                           mixed_int=0.24, packed16=0.17, pointer=0.06, float64=0.05,
                           float32=0.02, text=0.02, random=0.04),
        magnitude_bits=(0.25, 0.45, 0.30), change_word_fraction=0.90,
    ),
    "wrf": BenchmarkProfile(
        name="wrf", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.08, sparse=0.08, small_int=0.23, small_neg_int=0.08,
                           mixed_int=0.19, packed16=0.16, pointer=0.06, float64=0.06,
                           float32=0.02, text=0.02, random=0.02),
        magnitude_bits=(0.28, 0.45, 0.27), change_word_fraction=0.75,
    ),
    "sopl": BenchmarkProfile(
        name="sopl", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.10, sparse=0.09, small_int=0.25, small_neg_int=0.08,
                           mixed_int=0.17, packed16=0.15, pointer=0.09, float64=0.03,
                           float32=0.01, text=0.01, random=0.02),
        magnitude_bits=(0.32, 0.45, 0.23), change_word_fraction=0.70,
    ),
    "zeus": BenchmarkProfile(
        name="zeus", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.10, sparse=0.08, small_int=0.23, small_neg_int=0.10,
                           mixed_int=0.18, packed16=0.15, pointer=0.07, float64=0.05,
                           float32=0.01, text=0.02, random=0.01),
        magnitude_bits=(0.32, 0.45, 0.23), change_word_fraction=0.65,
    ),
    "lbm": BenchmarkProfile(
        name="lbm", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.07, sparse=0.07, small_int=0.20, small_neg_int=0.08,
                           mixed_int=0.23, packed16=0.17, pointer=0.04, float64=0.06,
                           float32=0.02, text=0.02, random=0.04),
        magnitude_bits=(0.25, 0.45, 0.30), change_word_fraction=0.60,
    ),
    "gcc": BenchmarkProfile(
        name="gcc", suite="spec2006", memory_intensity="high",
        line_type_mix=_mix(zero=0.13, sparse=0.10, small_int=0.24, small_neg_int=0.08,
                           mixed_int=0.12, packed16=0.12, pointer=0.13, float64=0.01,
                           float32=0.01, text=0.04, random=0.02),
        magnitude_bits=(0.35, 0.45, 0.20), change_word_fraction=0.55,
    ),
    # ----------------------- Low memory intensity ------------------------ #
    "asta": BenchmarkProfile(
        name="asta", suite="spec2006", memory_intensity="low",
        line_type_mix=_mix(zero=0.14, sparse=0.11, small_int=0.22, small_neg_int=0.06,
                           mixed_int=0.11, packed16=0.11, pointer=0.17, float64=0.01,
                           float32=0.01, text=0.03, random=0.03),
        magnitude_bits=(0.35, 0.45, 0.20), change_word_fraction=0.30,
    ),
    "mcf": BenchmarkProfile(
        name="mcf", suite="spec2006", memory_intensity="low",
        line_type_mix=_mix(zero=0.13, sparse=0.12, small_int=0.22, small_neg_int=0.06,
                           mixed_int=0.11, packed16=0.11, pointer=0.18, float64=0.01,
                           float32=0.00, text=0.03, random=0.03),
        magnitude_bits=(0.32, 0.46, 0.22), change_word_fraction=0.30,
    ),
    "cann": BenchmarkProfile(
        name="cann", suite="parsec", memory_intensity="low",
        line_type_mix=_mix(zero=0.11, sparse=0.10, small_int=0.20, small_neg_int=0.06,
                           mixed_int=0.13, packed16=0.12, pointer=0.18, float64=0.04,
                           float32=0.01, text=0.03, random=0.02),
        magnitude_bits=(0.32, 0.46, 0.22), change_word_fraction=0.35,
    ),
    "libq": BenchmarkProfile(
        name="libq", suite="spec2006", memory_intensity="low",
        line_type_mix=_mix(zero=0.16, sparse=0.14, small_int=0.26, small_neg_int=0.06,
                           mixed_int=0.10, packed16=0.11, pointer=0.07, float64=0.02,
                           float32=0.01, text=0.02, random=0.05),
        magnitude_bits=(0.38, 0.44, 0.18), change_word_fraction=0.25,
    ),
    "omne": BenchmarkProfile(
        name="omne", suite="spec2006", memory_intensity="low",
        line_type_mix=_mix(zero=0.13, sparse=0.11, small_int=0.20, small_neg_int=0.06,
                           mixed_int=0.11, packed16=0.11, pointer=0.17, float64=0.01,
                           float32=0.01, text=0.04, random=0.05),
        magnitude_bits=(0.32, 0.46, 0.22), change_word_fraction=0.30,
    ),
}

#: High-memory-intensity benchmarks, in the order of Figure 8.
HMI_BENCHMARKS: Tuple[str, ...] = ("lesl", "milc", "wrf", "sopl", "zeus", "lbm", "gcc")
#: Low-memory-intensity benchmarks, in the order of Figure 8.
LMI_BENCHMARKS: Tuple[str, ...] = ("asta", "mcf", "cann", "libq", "omne")
#: All benchmarks evaluated by the paper, HMI first.
ALL_BENCHMARKS: Tuple[str, ...] = HMI_BENCHMARKS + LMI_BENCHMARKS


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by its short name (case-insensitive)."""
    key = name.strip().lower()
    if key not in PROFILES:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(PROFILES)}")
    return PROFILES[key]
