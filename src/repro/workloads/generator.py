"""Synthetic memory-line and write-trace generators.

:class:`LineGenerator` produces batches of 512-bit memory lines whose content
follows a :class:`~repro.workloads.profiles.BenchmarkProfile`: every line gets
a content type (zero, sparse, narrow integers, pointers, doubles, text, ...)
and its eight 64-bit words are drawn accordingly.  :class:`TraceGenerator`
turns that into differential-write traces by mutating a fraction of each
line's words per request, which models the value locality that differential
write and the paper's encodings exploit.

All generation is vectorised and driven by a seeded :class:`numpy.random
.Generator`, so traces are fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from .profiles import BenchmarkProfile, get_profile
from .trace import WriteTrace

#: Version of the trace-generation algorithm.  Bump whenever a change makes
#: generated traces differ for the same (profile, length, seed); the trace
#: corpus folds it into its content-addressed cache keys, so stale on-disk
#: traces are regenerated instead of silently reused.
GENERATOR_VERSION = 1

#: Integer magnitude (in bits) of each magnitude band; see
#: :attr:`BenchmarkProfile.magnitude_bits`.
MAGNITUDE_BANDS = (32, 55, 58)

#: Canonical x86-64 user-space pointer prefix used by the pointer line type.
POINTER_BASE = 0x0000_7F00_0000_0000


def _mask(bits: np.ndarray) -> np.ndarray:
    """Bit masks ``2^bits - 1`` as uint64 (vectorised, bits <= 63)."""
    return (np.uint64(1) << bits.astype(np.uint64)) - np.uint64(1)


@dataclass(frozen=True)
class MutationPlan:
    """Pre-drawn inputs of one mutation pass (see :meth:`LineGenerator.plan_mutations`)."""

    #: Mutation action names, in the profile's ``mutation_mix`` order.
    actions: List[str]
    #: ``(n, 8)`` bool: which words are rewritten.
    change: np.ndarray
    #: ``(n, 8)`` int: index into ``actions`` per word.
    action_index: np.ndarray
    #: Replacement words of the actions independent of the previous value.
    independent: Dict[str, np.ndarray]
    #: ``(n, 8)`` low-32-bit fills of the ``low_random`` action.
    low_random: np.ndarray


class LineGenerator:
    """Generate memory-line content following a benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, rng: Optional[np.random.Generator] = None):
        self.profile = profile
        self.rng = rng or np.random.default_rng()
        self._type_names = list(profile.line_type_mix.keys())
        self._type_probs = np.array([profile.line_type_mix[t] for t in self._type_names])
        self._type_probs = self._type_probs / self._type_probs.sum()

    # ------------------------------------------------------------------ #
    # Per-type word generators (each returns an (n, 8) uint64 array)
    # ------------------------------------------------------------------ #
    def _magnitudes(self, n: int) -> np.ndarray:
        """Per-line integer magnitude (bits) drawn from the profile's bands."""
        weights = np.asarray(self.profile.magnitude_bits, dtype=np.float64)
        weights = weights / weights.sum()
        band = self.rng.choice(len(MAGNITUDE_BANDS), size=n, p=weights)
        low = np.where(band == 0, 4, np.where(band == 1, 33, 56))
        high = np.array(MAGNITUDE_BANDS)[band]
        return self.rng.integers(low, high + 1).astype(np.uint64)

    def _raw(self, n: int) -> np.ndarray:
        return self.rng.integers(0, 2**64, size=(n, WORDS_PER_LINE), dtype=np.uint64)

    def _gen_zero(self, n: int) -> np.ndarray:
        return np.zeros((n, WORDS_PER_LINE), dtype=np.uint64)

    def _gen_sparse(self, n: int) -> np.ndarray:
        values = self._raw(n) & np.uint64(0xFFFF)
        keep = self.rng.random((n, WORDS_PER_LINE)) < 0.3
        return np.where(keep, values, np.uint64(0))

    def _gen_small_int(self, n: int) -> np.ndarray:
        magnitude = self._magnitudes(n)
        return self._raw(n) & _mask(magnitude)[:, None]

    def _gen_small_neg_int(self, n: int) -> np.ndarray:
        return ~self._gen_small_int(n)

    def _gen_mixed_int(self, n: int) -> np.ndarray:
        positive = self._gen_small_int(n)
        negate = self.rng.random((n, WORDS_PER_LINE)) < 0.4
        return np.where(negate, ~positive, positive)

    def _gen_packed16(self, n: int) -> np.ndarray:
        """Words made of four 16-bit fields (struct-of-shorts / indices arrays).

        The low three fields mix zeros, small positive shorts and negative
        shorts; the top field stays zero, small or all-ones so the word remains
        WLC-compressible.  This content type is what creates sub-word (16-bit)
        heterogeneity, which fine-granularity encodings exploit.
        """
        kind = self.rng.integers(0, 10, size=(n, WORDS_PER_LINE, 4), dtype=np.uint64)
        small = self.rng.integers(0, 256, size=(n, WORDS_PER_LINE, 4), dtype=np.uint64)
        wide = self.rng.integers(0x4000, 0x8000, size=(n, WORDS_PER_LINE, 4), dtype=np.uint64)
        negative = np.uint64(0xFFFF) - small
        fields = np.where(kind < 3, np.uint64(0), small)
        fields = np.where((kind >= 6) & (kind < 8), negative, fields)
        fields = np.where(kind >= 8, wide, fields)
        # Keep the top field friendly to WLC: zero, a small value, or all ones.
        top_kind = self.rng.integers(0, 10, size=(n, WORDS_PER_LINE), dtype=np.uint64)
        top = np.where(top_kind < 5, np.uint64(0), small[..., 3])
        top = np.where(top_kind >= 8, np.uint64(0xFFFF), top)
        fields[..., 3] = top
        shifts = np.arange(4, dtype=np.uint64) * np.uint64(16)
        return (fields << shifts).sum(axis=-1, dtype=np.uint64)

    def _gen_pointer(self, n: int) -> np.ndarray:
        """Pointer arrays: user-space addresses, half within one heap region.

        Lines whose pointers all target one region have small word-to-word
        deltas (BDI-compressible); lines mixing regions defeat BDI but remain
        WLC-compressible because the canonical-address prefix keeps the top
        bits constant.
        """
        same_region = self.rng.random((n, 1)) < 0.5
        region_line = (self.rng.integers(0, 2**20, size=(n, 1), dtype=np.uint64)) << np.uint64(20)
        region_word = (self.rng.integers(0, 2**20, size=(n, WORDS_PER_LINE), dtype=np.uint64)) << np.uint64(20)
        region = np.where(same_region, region_line, region_word)
        offsets = (self.rng.integers(0, 2**14, size=(n, WORDS_PER_LINE), dtype=np.uint64)) << np.uint64(3)
        return np.uint64(POINTER_BASE) | region | offsets

    def _gen_float64(self, n: int) -> np.ndarray:
        mantissa = self.rng.integers(0, 2**52, size=(n, WORDS_PER_LINE), dtype=np.uint64)
        exponent = self.rng.integers(1019, 1029, size=(n, WORDS_PER_LINE), dtype=np.uint64)
        sign = self.rng.integers(0, 2, size=(n, WORDS_PER_LINE), dtype=np.uint64)
        return (sign << np.uint64(63)) | (exponent << np.uint64(52)) | mantissa

    def _gen_float32(self, n: int) -> np.ndarray:
        mantissa = self.rng.integers(0, 2**23, size=(n, WORDS_PER_LINE, 2), dtype=np.uint64)
        exponent = self.rng.integers(123, 133, size=(n, WORDS_PER_LINE, 2), dtype=np.uint64)
        sign = self.rng.integers(0, 2, size=(n, WORDS_PER_LINE, 2), dtype=np.uint64)
        singles = (sign << np.uint64(31)) | (exponent << np.uint64(23)) | mantissa
        return singles[..., 0] | (singles[..., 1] << np.uint64(32))

    def _gen_text(self, n: int) -> np.ndarray:
        chars = self.rng.integers(0x20, 0x7F, size=(n, WORDS_PER_LINE, 8), dtype=np.uint64)
        shifts = (np.arange(8, dtype=np.uint64) * np.uint64(8))
        return (chars << shifts).sum(axis=-1, dtype=np.uint64)

    def _gen_random(self, n: int) -> np.ndarray:
        return self._raw(n)

    def generate_words(self, line_type: str, n: int) -> np.ndarray:
        """Generate ``n`` lines of the requested content type."""
        generator = getattr(self, f"_gen_{line_type}", None)
        if generator is None:
            raise ValueError(f"unknown line type {line_type!r}")
        return generator(n)

    # ------------------------------------------------------------------ #
    # Batch generation
    # ------------------------------------------------------------------ #
    def assign_types(self, n: int) -> np.ndarray:
        """Draw a content type for every line of a batch."""
        indices = self.rng.choice(len(self._type_names), size=n, p=self._type_probs)
        return np.asarray([self._type_names[i] for i in indices], dtype=object)

    def generate_lines(self, n: int, types: Optional[np.ndarray] = None) -> Tuple[LineBatch, np.ndarray]:
        """Generate ``n`` lines; returns the batch and the per-line content types."""
        if types is None:
            types = self.assign_types(n)
        words = np.zeros((n, WORDS_PER_LINE), dtype=np.uint64)
        # Stable iteration order: set order is hash-salted per process, which
        # would consume the seeded RNG in a process-dependent order and make
        # "reproducible" traces differ between runs.
        for line_type in sorted(set(types.tolist())):
            mask = types == line_type
            words[mask] = self.generate_words(line_type, int(mask.sum()))
        return LineBatch(words), types

    def plan_mutations(self, n: int, types: np.ndarray) -> "MutationPlan":
        """Draw every random input of a mutation pass up front, vectorised.

        The plan holds, for ``n`` prospective writes: which words change, the
        action each changed word takes (per the profile's ``mutation_mix``),
        and the replacement values of the actions that do not depend on the
        previous word value.  :meth:`apply_mutations` turns a plan plus
        previous values into new values; splitting the two lets the trace
        ingest resolve per-address rewrite chains round by round while
        sharing these exact semantics (and RNG draw order) with
        :meth:`mutate_lines`.
        """
        change = self.rng.random((n, WORDS_PER_LINE)) < self.profile.change_word_fraction
        actions = list(self.profile.mutation_mix.keys())
        probs = np.array([self.profile.mutation_mix[a] for a in actions])
        probs = probs / probs.sum()
        action_index = self.rng.choice(len(actions), size=(n, WORDS_PER_LINE), p=probs)
        independent = {
            "same_type": self.generate_lines(n, types)[0].words,
            "type_change": self.generate_lines(n)[0].words,
            "ones_fill": ~(self._raw(n) & np.uint64(0xFFFF)),
        }
        low_random = self._raw(n) & np.uint64(0xFFFFFFFF)
        return MutationPlan(
            actions=actions,
            change=change,
            action_index=action_index,
            independent=independent,
            low_random=low_random,
        )

    def apply_mutations(
        self,
        plan: "MutationPlan",
        words: np.ndarray,
        rows: Union[slice, np.ndarray] = slice(None),
    ) -> np.ndarray:
        """New word values for ``words`` under rows ``rows`` of ``plan``.

        ``words`` are the previous values of the selected writes (the
        complement / low-random actions transform them); independent actions
        take their precomputed replacements from the plan.
        """
        value = words.copy()
        for index, action in enumerate(plan.actions):
            mask = plan.change[rows] & (plan.action_index[rows] == index)
            if not mask.any():
                continue
            if action == "zero_fill":
                replacement = np.zeros_like(words)
            elif action == "complement":
                replacement = ~words
            elif action == "low_random":
                replacement = (words & ~np.uint64(0xFFFFFFFF)) | plan.low_random[rows]
            else:
                replacement = plan.independent[action][rows]
            value = np.where(mask, replacement, value)
        return value

    def mutate_lines(self, lines: LineBatch, types: np.ndarray) -> LineBatch:
        """Produce the next write value of each line (differential-write locality).

        A fraction of each line's words (``change_word_fraction``) is
        rewritten; the value each rewritten word receives is drawn from the
        profile's ``mutation_mix``: a nearby value of the same content type, a
        zero fill, a small negative value (run of ones), the complement of the
        previous value (sign change), a value of a fresh content type, or a
        word whose low half is re-randomised.  The zero/ones/complement
        actions are what give the written cells the strong ``00``/``11`` bias
        the paper observes in real workloads.
        """
        plan = self.plan_mutations(len(lines), types)
        return LineBatch(self.apply_mutations(plan, lines.words))


class TraceGenerator:
    """Generate differential-write traces for a benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 2018):
        self.profile = profile
        self.seed = seed

    def generate(self, length: int) -> WriteTrace:
        """Generate a trace of ``length`` write requests."""
        # Derive a stable per-benchmark stream from the seed and the name
        # (``hash()`` is salted per process, so it is not used here).
        name_key = sum((i + 1) * ord(c) for i, c in enumerate(self.profile.name)) & 0xFFFF
        rng = np.random.default_rng((self.seed, name_key))
        generator = LineGenerator(self.profile, rng)
        old, types = generator.generate_lines(length)
        new = generator.mutate_lines(old, types)
        return WriteTrace(
            old=old,
            new=new,
            name=self.profile.name,
            metadata={
                "suite": self.profile.suite,
                "memory_intensity": self.profile.memory_intensity,
                "seed": str(self.seed),
            },
        )


def generate_benchmark_trace(name: str, length: int = 20_000, seed: int = 2018) -> WriteTrace:
    """Generate the synthetic write trace of one named benchmark."""
    return TraceGenerator(get_profile(name), seed=seed).generate(length)


def generate_random_trace(length: int = 20_000, seed: int = 2018) -> WriteTrace:
    """Uniformly random (old, new) line pairs -- the paper's 'random workload'."""
    rng = np.random.default_rng(seed)
    old = LineBatch.random(length, rng)
    new = LineBatch.random(length, rng)
    return WriteTrace(old=old, new=new, name="random", metadata={"seed": str(seed)})
