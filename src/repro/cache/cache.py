"""Set-associative write-back cache model.

The paper collects its memory write traces from the write-backs of per-core
2 MB L2 caches (Table II).  This module provides the equivalent substrate: a
set-associative, write-back, write-allocate cache with LRU replacement that
tracks the *data* of every resident line, so that each eviction of a dirty
line produces a memory write transaction carrying both the evicted (new) data
and the data previously stored in memory -- exactly the (old, new) pairs the
trace-driven evaluation consumes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import SimulationError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from ..workloads.trace import WriteTrace


@dataclass
class CacheStatistics:
    """Hit/miss/write-back counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of cache accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit in the cache."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _CacheLine:
    """Metadata + data of one resident cache line."""

    tag: int
    data: np.ndarray
    dirty: bool = False


class WriteBackCache:
    """Set-associative write-back cache that records its dirty evictions.

    Parameters
    ----------
    size_bytes:
        Total capacity (default 2 MB, the paper's private L2).
    ways:
        Associativity (default 8).
    line_bytes:
        Line size (default 64 bytes = one PCM memory line).
    """

    def __init__(self, size_bytes: int = 2 * 1024 * 1024, ways: int = 8, line_bytes: int = 64):
        if size_bytes % (ways * line_bytes):
            raise SimulationError("cache size must be a multiple of ways * line_bytes")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        #: Per-set LRU-ordered mapping from tag to resident line.
        self._sets: List["OrderedDict[int, _CacheLine]"] = [OrderedDict() for _ in range(self.num_sets)]
        #: Backing-store contents (what memory currently holds) per line address.
        self._memory_image: Dict[int, np.ndarray] = {}
        self.stats = CacheStatistics()
        #: Write-back transactions produced so far: (address, old words, new words).
        self.writebacks: List[Tuple[int, np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _index_and_tag(self, line_address: int) -> Tuple[int, int]:
        return line_address % self.num_sets, line_address // self.num_sets

    def _memory_words(self, line_address: int) -> np.ndarray:
        return self._memory_image.get(line_address, np.zeros(WORDS_PER_LINE, dtype=np.uint64))

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(
        self,
        line_address: int,
        write_data: Optional[np.ndarray] = None,
    ) -> Optional[Tuple[int, np.ndarray, np.ndarray]]:
        """Perform one cache access; returns a write-back transaction if one occurs.

        Parameters
        ----------
        line_address:
            Line-granularity address.
        write_data:
            For stores, the new 8-word line content; ``None`` for loads.

        Returns
        -------
        tuple or None
            ``(address, old_words, new_words)`` when a dirty line is evicted.
        """
        index, tag = self._index_and_tag(line_address)
        cache_set = self._sets[index]
        writeback = None

        if tag in cache_set:
            self.stats.hits += 1
            line = cache_set.pop(tag)
        else:
            self.stats.misses += 1
            if len(cache_set) >= self.ways:
                writeback = self._evict(index, cache_set)
            line = _CacheLine(tag=tag, data=self._memory_words(line_address).copy())
        if write_data is not None:
            new_data = np.asarray(write_data, dtype=np.uint64).reshape(WORDS_PER_LINE)
            if not np.array_equal(new_data, line.data):
                line.data = new_data.copy()
                line.dirty = True
        cache_set[tag] = line  # most recently used position
        return writeback

    def _evict(self, index: int, cache_set: "OrderedDict[int, _CacheLine]") -> Optional[Tuple[int, np.ndarray, np.ndarray]]:
        victim_tag, victim = cache_set.popitem(last=False)
        self.stats.evictions += 1
        if not victim.dirty:
            return None
        victim_address = victim_tag * self.num_sets + index
        old_words = self._memory_words(victim_address)
        self._memory_image[victim_address] = victim.data.copy()
        self.stats.writebacks += 1
        transaction = (victim_address, old_words, victim.data.copy())
        self.writebacks.append(transaction)
        return transaction

    def flush(self) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Write back every dirty line (end-of-simulation flush)."""
        flushed: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for index, cache_set in enumerate(self._sets):
            for tag in list(cache_set.keys()):
                line = cache_set.pop(tag)
                if line.dirty:
                    address = tag * self.num_sets + index
                    old_words = self._memory_words(address)
                    self._memory_image[address] = line.data.copy()
                    self.stats.writebacks += 1
                    transaction = (address, old_words, line.data.copy())
                    self.writebacks.append(transaction)
                    flushed.append(transaction)
        return flushed

    # ------------------------------------------------------------------ #
    # Trace extraction
    # ------------------------------------------------------------------ #
    def writeback_trace(self, name: str = "cache-writebacks") -> WriteTrace:
        """Package the recorded write-backs as a :class:`WriteTrace`."""
        if not self.writebacks:
            return WriteTrace(old=LineBatch.zeros(0), new=LineBatch.zeros(0), name=name)
        addresses = np.array([t[0] for t in self.writebacks], dtype=np.uint64)
        old = LineBatch(np.stack([t[1] for t in self.writebacks]))
        new = LineBatch(np.stack([t[2] for t in self.writebacks]))
        return WriteTrace(old=old, new=new, addresses=addresses, name=name)
