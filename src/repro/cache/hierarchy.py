"""Multi-core cache hierarchy producing PCM write-back traces.

The paper's traces come from an 8-core CMP where each core owns a private 2 MB
L2 cache; main-memory writes are the dirty-line write-backs of those caches.
:class:`CacheHierarchy` models exactly that layer: one :class:`WriteBackCache`
per core, a shared backing-store image, and a helper that drives the caches
with a synthetic per-core access stream and returns the resulting write-back
trace, which can then be fed to the trace-driven evaluation or replayed into a
:class:`~repro.memory.main_memory.PCMMainMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..core.config import CPUConfig
from ..core.line import LineBatch
from ..workloads.generator import LineGenerator
from ..workloads.profiles import BenchmarkProfile, get_profile
from ..workloads.trace import WriteTrace
from .cache import CacheStatistics, WriteBackCache


@dataclass(frozen=True)
class MemoryAccess:
    """One core-side access: a load or a store of a full line."""

    core: int
    line_address: int
    write_data: Optional[np.ndarray] = None

    @property
    def is_store(self) -> bool:
        """``True`` when the access writes data."""
        return self.write_data is not None


class CacheHierarchy:
    """Private per-core L2 caches in front of PCM main memory."""

    def __init__(self, config: CPUConfig = CPUConfig()):
        self.config = config
        self.caches = [
            WriteBackCache(
                size_bytes=config.l2_size_kib * 1024,
                ways=config.l2_ways,
                line_bytes=config.l2_line_bytes,
            )
            for _ in range(config.cores)
        ]

    def access(self, access: MemoryAccess) -> None:
        """Route one access to the owning core's private cache."""
        if not 0 <= access.core < len(self.caches):
            raise ValueError(f"core {access.core} out of range")
        self.caches[access.core].access(access.line_address, access.write_data)

    def run(self, accesses: Iterable[MemoryAccess], flush: bool = True) -> WriteTrace:
        """Drive the hierarchy with an access stream and collect the write-backs."""
        for access in accesses:
            self.access(access)
        if flush:
            for cache in self.caches:
                cache.flush()
        return self.writeback_trace()

    def writeback_trace(self, name: str = "hierarchy-writebacks") -> WriteTrace:
        """Merge the write-backs of all cores into one trace."""
        traces = [cache.writeback_trace(name) for cache in self.caches]
        non_empty = [t for t in traces if len(t)]
        if not non_empty:
            return WriteTrace(old=LineBatch.zeros(0), new=LineBatch.zeros(0), name=name)
        old = LineBatch.concatenate([t.old for t in non_empty])
        new = LineBatch.concatenate([t.new for t in non_empty])
        addresses = np.concatenate([t.addresses for t in non_empty])
        return WriteTrace(old=old, new=new, addresses=addresses, name=name)

    def statistics(self) -> List[CacheStatistics]:
        """Per-core cache statistics."""
        return [cache.stats for cache in self.caches]


def generate_access_stream(
    profile: BenchmarkProfile,
    accesses: int = 50_000,
    cores: int = 8,
    working_set_lines: int = 4_096,
    store_fraction: float = 0.45,
    locality: float = 0.8,
    seed: int = 2018,
) -> List[MemoryAccess]:
    """Synthesize a per-core access stream for a benchmark profile.

    Addresses follow a simple hot/cold model: with probability ``locality`` an
    access targets the core's hot region (an eighth of the working set),
    otherwise a uniformly random line.  Stores carry line data drawn from the
    profile's content generator, so the write-backs reaching memory have the
    same value statistics as the synthetic traces.
    """
    rng = np.random.default_rng(seed)
    generator = LineGenerator(profile, rng)
    hot_lines = max(1, working_set_lines // 8)
    stream: List[MemoryAccess] = []
    store_mask = rng.random(accesses) < store_fraction
    hot_mask = rng.random(accesses) < locality
    core_ids = rng.integers(0, cores, size=accesses)
    hot_addresses = rng.integers(0, hot_lines, size=accesses)
    cold_addresses = rng.integers(0, working_set_lines, size=accesses)
    store_count = int(store_mask.sum())
    store_lines, _ = generator.generate_lines(max(store_count, 1))
    store_index = 0
    for i in range(accesses):
        core = int(core_ids[i])
        base = core * working_set_lines
        offset = int(hot_addresses[i]) if hot_mask[i] else int(cold_addresses[i])
        address = base + offset
        data = None
        if store_mask[i]:
            data = store_lines.words[store_index % len(store_lines)]
            store_index += 1
        stream.append(MemoryAccess(core=core, line_address=address, write_data=data))
    return stream


def trace_from_profile(
    benchmark: str,
    accesses: int = 50_000,
    seed: int = 2018,
    config: CPUConfig = CPUConfig(),
) -> Tuple[WriteTrace, List[CacheStatistics]]:
    """End-to-end helper: synthetic access stream -> cache hierarchy -> write trace."""
    profile = get_profile(benchmark)
    hierarchy = CacheHierarchy(config)
    stream = generate_access_stream(profile, accesses=accesses, cores=config.cores, seed=seed)
    trace = hierarchy.run(stream)
    return trace, hierarchy.statistics()
