"""Cache-hierarchy substrate: write-back caches that generate PCM write traces."""

from .cache import CacheStatistics, WriteBackCache
from .hierarchy import (
    CacheHierarchy,
    MemoryAccess,
    generate_access_stream,
    trace_from_profile,
)

__all__ = [
    "CacheHierarchy",
    "CacheStatistics",
    "MemoryAccess",
    "WriteBackCache",
    "generate_access_stream",
    "trace_from_profile",
]
