"""Flip-N-Write (FNW) [Cho & Lee, MICRO 2009], adapted to MLC PCM.

FNW writes either a data block or its bitwise complement, whichever rewrites
fewer (or cheaper) cells, and records the decision in one auxiliary flip bit
per block.  Following the paper's ISO-overhead comparison, the 512-bit line is
partitioned into four 128-bit blocks so that the four flip bits match the two
auxiliary symbols used by FlipMin and 6cosets.  At the symbol level,
complementing a block maps each symbol to its bitwise complement
(``00 <-> 11``, ``01 <-> 10``) before the default symbol-to-state mapping is
applied.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from ..core.line import LineBatch
from ..core.symbols import SYMBOLS_PER_LINE, complement_symbols
from .base import (
    WriteEncoder,
    block_energy_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)


class FNWEncoder(WriteEncoder):
    """Flip-N-Write at a configurable block granularity (default 128 bits)."""

    def __init__(
        self,
        block_bits: int = 128,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        super().__init__(energy_model)
        if block_bits % 2 or (SYMBOLS_PER_LINE * 2) % block_bits:
            raise ConfigurationError("block_bits must evenly divide the 512-bit line")
        self.block_bits = block_bits
        self.block_cells = block_bits // 2
        self.num_blocks = SYMBOLS_PER_LINE // self.block_cells
        self.name = f"fnw-{block_bits}"

    @property
    def aux_cells(self) -> int:
        """One flip bit per block, packed two bits per auxiliary cell."""
        return (self.num_blocks + 1) // 2

    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        data_stored = stored_states[:, :SYMBOLS_PER_LINE]
        plain = apply_mapping(DEFAULT_MAPPING, symbols)
        flipped = apply_mapping(DEFAULT_MAPPING, complement_symbols(symbols))
        candidate_states = np.stack([plain, flipped])
        costs = block_energy_costs(candidate_states, data_stored, self.energy_model, self.block_cells)
        choice = costs.argmin(axis=0).astype(np.uint8)  # (n, blocks)
        data_states = select_states_per_block(candidate_states, choice, self.block_cells)
        aux_states = pack_bits_to_states(choice)
        states = np.concatenate([data_states, aux_states], axis=1)
        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        aux_mask[:, SYMBOLS_PER_LINE:] = True
        compressed = np.zeros(n, dtype=bool)
        encoded = np.ones(n, dtype=bool)
        return states, aux_mask, compressed, encoded

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        data_states = states[:, :SYMBOLS_PER_LINE]
        aux_states = states[:, SYMBOLS_PER_LINE:]
        flip_bits = unpack_states_to_bits(aux_states, self.num_blocks)
        symbols = invert_mapping(DEFAULT_MAPPING)[data_states]
        flip_per_cell = np.repeat(flip_bits, self.block_cells, axis=1).astype(bool)
        symbols = np.where(flip_per_cell, complement_symbols(symbols), symbols)
        return LineBatch.from_symbols(symbols)
