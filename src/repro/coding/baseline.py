"""Differential-write baseline: no encoding, just write the changed cells.

This is the paper's ``Baseline`` scheme: every data symbol is stored under the
default symbol-to-state mapping (coset C1) and differential write skips the
cells whose state does not change.  All other schemes are built on top of the
same differential-write substrate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.line import LineBatch
from ..core.symbols import SYMBOLS_PER_LINE
from .base import WriteEncoder


class BaselineEncoder(WriteEncoder):
    """Plain differential write with the default symbol-to-state mapping."""

    name = "baseline"

    def __init__(self, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        super().__init__(energy_model)

    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        states = apply_mapping(DEFAULT_MAPPING, lines.symbols())
        n = len(lines)
        aux_mask = np.zeros((n, SYMBOLS_PER_LINE), dtype=bool)
        compressed = np.zeros(n, dtype=bool)
        encoded = np.zeros(n, dtype=bool)
        return states, aux_mask, compressed, encoded

    def decode_states(self, states: np.ndarray) -> LineBatch:
        symbols = invert_mapping(DEFAULT_MAPPING)[np.asarray(states, dtype=np.uint8)]
        return LineBatch.from_symbols(symbols)
