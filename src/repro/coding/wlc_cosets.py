"""WLC combined with *unrestricted* coset encodings (WLC+4cosets, WLC+3cosets).

These schemes pair the Word-Level Compression front-end with the unrestricted
4cosets / 3cosets encodings of Section III: every data block of a compressible
word independently picks any of the candidates, at the cost of two auxiliary
bits per block stored in the reclaimed region.  Because the unrestricted
variants need more reclaimed bits than WLCRC at the same granularity
(Section IX-A: 16, 8, 4 and 2 bits per word at 8/16/32/64-bit blocks), fewer
lines are compressible at fine granularities -- which is why their energy
optimum sits at 32-bit blocks while WLCRC's sits at 16-bit blocks.

``WLC+4cosets`` with 32-bit blocks is the configuration evaluated as
``WLC+4cosets`` in Figures 8-10 of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.cosets import FOUR_COSETS, THREE_COSETS
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from .wlc_base import WLCWordEncoderBase

#: Auxiliary bits per data block (candidate index) for the unrestricted schemes.
BITS_PER_BLOCK = 2


class WLCNCosetsEncoder(WLCWordEncoderBase):
    """WLC + unrestricted coset encoding with a configurable candidate family."""

    def __init__(
        self,
        candidates: np.ndarray = FOUR_COSETS,
        granularity_bits: int = 32,
        name_prefix: str = "wlc+4cosets",
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        candidates = np.asarray(candidates, dtype=np.uint8)
        if candidates.shape[0] > 4:
            raise ConfigurationError(
                "unrestricted WLC encodings use a 2-bit per-block index (at most 4 candidates)"
            )
        blocks_per_word = 64 // granularity_bits
        reclaimed = BITS_PER_BLOCK * blocks_per_word
        super().__init__(
            granularity_bits=granularity_bits,
            candidates=candidates,
            reclaimed_bits=reclaimed,
            name=f"{name_prefix}-{granularity_bits}",
            energy_model=energy_model,
        )

    def _select_candidates(
        self, block_costs: np.ndarray, block_flips: np.ndarray, stored_aux_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        best = block_costs.argmin(axis=0).astype(np.uint8)  # (n, 8, blocks)
        best_cost = block_costs.min(axis=0)
        # Prefer the candidate already recorded in the stored auxiliary bits on
        # exact cost ties, so rewriting identical data touches no cells.
        stored_choice = self._choices_from_aux(stored_aux_values)
        stored_cost = np.take_along_axis(
            np.moveaxis(block_costs, 0, -1), stored_choice[..., None].astype(np.intp), axis=-1
        )[..., 0]
        choice = np.where(stored_cost <= best_cost, stored_choice, best).astype(np.uint8)
        aux_values = np.zeros(choice.shape[:2], dtype=np.uint64)
        for block in range(self.blocks_per_word):
            aux_values |= choice[..., block].astype(np.uint64) << np.uint64(BITS_PER_BLOCK * block)
        return choice, aux_values

    def _choices_from_aux(self, aux_values: np.ndarray) -> np.ndarray:
        aux_values = np.asarray(aux_values, dtype=np.uint64)
        blocks = []
        mask = np.uint64((1 << BITS_PER_BLOCK) - 1)
        limit = self.candidates.shape[0] - 1
        for block in range(self.blocks_per_word):
            index = ((aux_values >> np.uint64(BITS_PER_BLOCK * block)) & mask).astype(np.uint8)
            blocks.append(np.minimum(index, limit))
        return np.stack(blocks, axis=-1)


def make_wlc_four_cosets(
    granularity_bits: int = 32, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL
) -> WLCNCosetsEncoder:
    """WLC+4cosets at the requested granularity (paper default: 32-bit blocks)."""
    return WLCNCosetsEncoder(
        FOUR_COSETS, granularity_bits, name_prefix="wlc+4cosets", energy_model=energy_model
    )


def make_wlc_three_cosets(
    granularity_bits: int = 32, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL
) -> WLCNCosetsEncoder:
    """WLC+3cosets at the requested granularity (used in the Figure 11-13 sweeps)."""
    return WLCNCosetsEncoder(
        THREE_COSETS, granularity_bits, name_prefix="wlc+3cosets", energy_model=energy_model
    )
