"""FlipMin [Jacobvitz et al., HPCA 2013], adapted to MLC PCM.

FlipMin XORs the memory line with one of sixteen binary coset vectors and
writes whichever result is cheapest, recording the vector index in two
auxiliary symbols (four bits).  The original vectors come from the dual code
of a (72, 64) Hamming generator matrix and behave like random binary vectors;
this implementation generates them from a fixed-seed PRNG
(:func:`repro.core.cosets.flipmin_coset_vectors`) so runs are reproducible.
Because the vectors are random, FlipMin works best on random data and loses
its edge on the biased data of real workloads -- one of the observations that
motivates the paper's hand-crafted coset candidates.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.cosets import DEFAULT_MAPPING, apply_mapping, flipmin_coset_vectors, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from ..core.line import LineBatch
from ..core.symbols import SYMBOLS_PER_LINE, words_to_symbols
from .base import (
    WriteEncoder,
    block_energy_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)


class FlipMinEncoder(WriteEncoder):
    """FlipMin with sixteen pseudo-random 512-bit coset vectors."""

    name = "flipmin"

    def __init__(
        self,
        num_cosets: int = 16,
        seed: int = 0x5EED,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        super().__init__(energy_model)
        if num_cosets < 2 or num_cosets > 16:
            raise ConfigurationError("num_cosets must be between 2 and 16")
        self.num_cosets = num_cosets
        self.vectors = flipmin_coset_vectors(num_cosets, seed=seed)
        self.index_bits = max(1, (num_cosets - 1).bit_length())

    @property
    def aux_cells(self) -> int:
        """Auxiliary cells holding the coset-vector index (four bits -> two cells)."""
        return (self.index_bits + 1) // 2

    def _candidate_states(self, lines: LineBatch) -> np.ndarray:
        """States produced by XORing the line with every coset vector."""
        candidates = []
        for vector in self.vectors:
            xored = lines.words ^ vector[None, :]
            candidates.append(apply_mapping(DEFAULT_MAPPING, words_to_symbols(xored)))
        return np.stack(candidates)

    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        data_stored = stored_states[:, :SYMBOLS_PER_LINE]
        candidate_states = self._candidate_states(lines)
        costs = block_energy_costs(
            candidate_states, data_stored, self.energy_model, SYMBOLS_PER_LINE
        )
        choice = costs.argmin(axis=0)  # (n, 1)
        data_states = select_states_per_block(candidate_states, choice, SYMBOLS_PER_LINE)
        index_bits = np.stack(
            [((choice[:, 0] >> b) & 1).astype(np.uint8) for b in range(self.index_bits)], axis=1
        )
        aux_states = pack_bits_to_states(index_bits)
        states = np.concatenate([data_states, aux_states], axis=1)
        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        aux_mask[:, SYMBOLS_PER_LINE:] = True
        compressed = np.zeros(n, dtype=bool)
        encoded = np.ones(n, dtype=bool)
        return states, aux_mask, compressed, encoded

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        data_states = states[:, :SYMBOLS_PER_LINE]
        aux_states = states[:, SYMBOLS_PER_LINE:]
        bits = unpack_states_to_bits(aux_states, self.index_bits)
        index = np.zeros(states.shape[0], dtype=np.int64)
        for b in range(self.index_bits):
            index |= bits[:, b].astype(np.int64) << b
        index = np.clip(index, 0, self.num_cosets - 1)
        symbols = invert_mapping(DEFAULT_MAPPING)[data_states]
        batch = LineBatch.from_symbols(symbols)
        words = batch.words ^ self.vectors[index]
        return LineBatch(words)
