"""Scheme registry: build any evaluated encoding scheme from its name.

The names follow the paper's terminology.  A granularity suffix (``-8``,
``-16``, ``-32``, ...) can be appended to the coset-based schemes; without a
suffix each scheme uses the default granularity the paper evaluates it at
(512-bit lines for FlipMin/FNW/6cosets, 32-bit blocks for WLC+4cosets,
16-bit blocks for WLCRC).

Examples
--------
>>> from repro.coding import make_scheme
>>> make_scheme("wlcrc-16").name
'wlcrc-16'
>>> make_scheme("6cosets").granularity_bits
512
"""

from __future__ import annotations

from typing import List, Optional

from ..core.cosets import FOUR_COSETS, SIX_COSETS, THREE_COSETS
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from .base import WriteEncoder
from .baseline import BaselineEncoder
from .coc_cosets import COCFourCosetsEncoder
from .din import DINEncoder
from .flipmin import FlipMinEncoder
from .fnw import FNWEncoder
from .ncosets import NCosetsEncoder
from .restricted import RestrictedCosetEncoder
from .wlc_cosets import WLCNCosetsEncoder
from .wlcrc import WLCRCEncoder

#: Default threshold of the multi-objective WLCRC variant (Section VIII-D).
DEFAULT_ENDURANCE_THRESHOLD = 0.01

#: Scheme names evaluated in Figures 8, 9 and 10, in the paper's order.
FIGURE8_SCHEMES = (
    "baseline",
    "flipmin",
    "fnw",
    "din",
    "6cosets",
    "coc+4cosets",
    "wlc+4cosets",
    "wlcrc-16",
)


def _split_granularity(name: str, prefix: str) -> Optional[int]:
    """Parse ``prefix`` or ``prefix-<bits>`` and return the granularity (or None)."""
    if name == prefix:
        return 0
    if name.startswith(prefix + "-"):
        suffix = name[len(prefix) + 1:]
        if suffix.isdigit():
            return int(suffix)
    return None


def make_scheme(name: str, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> WriteEncoder:
    """Instantiate an encoding scheme by its paper name."""
    key = name.strip().lower()
    if key == "baseline":
        return BaselineEncoder(energy_model)
    if key in ("fnw", "fnw-128"):
        return FNWEncoder(128, energy_model)
    if key.startswith("fnw-"):
        return FNWEncoder(int(key[4:]), energy_model)
    if key == "flipmin":
        return FlipMinEncoder(energy_model=energy_model)
    if key == "din":
        return DINEncoder(energy_model)
    if key == "coc+4cosets":
        return COCFourCosetsEncoder(energy_model)

    for prefix, candidates in (
        ("6cosets", SIX_COSETS),
        ("4cosets", FOUR_COSETS),
        ("3cosets", THREE_COSETS),
    ):
        granularity = _split_granularity(key, prefix)
        if granularity is not None:
            bits = granularity or 512
            return NCosetsEncoder(
                candidates, bits, name=f"{prefix}-{bits}", energy_model=energy_model
            )

    granularity = _split_granularity(key, "3-r-cosets")
    if granularity is not None:
        return RestrictedCosetEncoder(granularity or 16, energy_model)

    granularity = _split_granularity(key, "wlc+4cosets")
    if granularity is not None:
        return WLCNCosetsEncoder(FOUR_COSETS, granularity or 32, "wlc+4cosets", energy_model)
    granularity = _split_granularity(key, "wlc+3cosets")
    if granularity is not None:
        return WLCNCosetsEncoder(THREE_COSETS, granularity or 32, "wlc+3cosets", energy_model)

    if key.endswith("-mo"):
        granularity = _split_granularity(key[:-3], "wlcrc")
        if granularity is not None:
            return WLCRCEncoder(
                granularity or 16,
                energy_model,
                endurance_threshold=DEFAULT_ENDURANCE_THRESHOLD,
            )
    granularity = _split_granularity(key, "wlcrc")
    if granularity is not None:
        return WLCRCEncoder(granularity or 16, energy_model)

    raise ConfigurationError(f"unknown scheme name: {name!r}")


def available_schemes() -> List[str]:
    """Canonical list of scheme names accepted by :func:`make_scheme`."""
    return [
        "baseline",
        "fnw",
        "flipmin",
        "din",
        "6cosets",
        "4cosets",
        "3cosets-16",
        "3-r-cosets-16",
        "coc+4cosets",
        "wlc+4cosets",
        "wlc+3cosets",
        "wlcrc-8",
        "wlcrc-16",
        "wlcrc-32",
        "wlcrc-64",
        "wlcrc-16-mo",
    ]
