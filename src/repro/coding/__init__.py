"""Write-encoding schemes: the paper's WLCRC proposal and every baseline."""

from .base import (
    EncodedBatch,
    WriteEncoder,
    block_energy_costs,
    block_flip_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)
from .baseline import BaselineEncoder
from .coc_cosets import COCFourCosetsEncoder
from .din import DINEncoder, build_din_mapping
from .flipmin import FlipMinEncoder
from .fnw import FNWEncoder
from .ncosets import (
    NCosetsEncoder,
    PairCellAuxCodec,
    SingleCellAuxCodec,
    make_four_cosets,
    make_six_cosets,
    make_three_cosets,
)
from .registry import (
    DEFAULT_ENDURANCE_THRESHOLD,
    FIGURE8_SCHEMES,
    available_schemes,
    make_scheme,
)
from .restricted import RestrictedCosetEncoder
from .wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE, WLCWordEncoderBase
from .wlc_cosets import WLCNCosetsEncoder, make_wlc_four_cosets, make_wlc_three_cosets
from .wlcrc import RECLAIMED_BITS_BY_GRANULARITY, WLCRCEncoder

__all__ = [
    "BaselineEncoder",
    "COCFourCosetsEncoder",
    "DEFAULT_ENDURANCE_THRESHOLD",
    "DINEncoder",
    "EncodedBatch",
    "FIGURE8_SCHEMES",
    "FLAG_COMPRESSED_STATE",
    "FLAG_RAW_STATE",
    "FlipMinEncoder",
    "FNWEncoder",
    "NCosetsEncoder",
    "PairCellAuxCodec",
    "RECLAIMED_BITS_BY_GRANULARITY",
    "RestrictedCosetEncoder",
    "SingleCellAuxCodec",
    "WLCNCosetsEncoder",
    "WLCRCEncoder",
    "WLCWordEncoderBase",
    "WriteEncoder",
    "available_schemes",
    "block_energy_costs",
    "block_flip_costs",
    "build_din_mapping",
    "make_four_cosets",
    "make_scheme",
    "make_six_cosets",
    "make_three_cosets",
    "make_wlc_four_cosets",
    "make_wlc_three_cosets",
    "pack_bits_to_states",
    "select_states_per_block",
    "unpack_states_to_bits",
]
