"""WLCRC: Word-Level Compression with Restricted Coset coding (the paper's proposal).

WLCRC integrates the WLC light compression (Section IV) with the restricted
coset coding (Section V) at word scope (Section VI).  For every compressible
512-bit line, each 64-bit word is encoded independently and in parallel:

* the word is split into data blocks of 8, 16, 32 or 64 bits;
* every block is trial-encoded with the candidates C1, C2 and C3 of Table I;
* the word picks the *family* -- ``{C1, C2}`` or ``{C1, C3}`` -- whose best
  per-block selection has the lower total energy (Algorithm 1), and stores the
  family bit plus one selector bit per block in the bits that WLC reclaimed at
  the top of the word.

The default configuration is **WLCRC-16** (16-bit blocks, five reclaimed bits
per word, WLC requiring six identical most-significant bits), the paper's
best-energy design point.  At 64-bit granularity the restriction degenerates
to the unrestricted 3cosets choice with a 2-bit candidate index, exactly as
noted in the paper.

The optional *multi-objective* mode (Section VIII-D) compares the two family
energies and, when they are within a threshold ``T`` of each other, picks the
family that rewrites fewer cells instead -- trading a negligible amount of
energy for better endurance.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.cosets import THREE_COSETS
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from .wlc_base import WLCWordEncoderBase

#: Candidate index used by each (family, selector-bit) combination:
#: family 0 selects between C1 and C2, family 1 between C1 and C3.
FAMILY_CANDIDATES = np.array([[0, 1], [0, 2]], dtype=np.uint8)

#: Reclaimed bits per 64-bit word for each supported granularity.  The 8-bit
#: configuration reclaims the whole top byte (the most significant block is
#: compressed away), matching Section IX-A of the paper.
RECLAIMED_BITS_BY_GRANULARITY: Dict[int, int] = {8: 8, 16: 5, 32: 3, 64: 2}


class WLCRCEncoder(WLCWordEncoderBase):
    """Word-Level Compression + Restricted Coset coding (WLCRC)."""

    def __init__(
        self,
        granularity_bits: int = 16,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
        endurance_threshold: Optional[float] = None,
    ):
        if granularity_bits not in RECLAIMED_BITS_BY_GRANULARITY:
            raise ConfigurationError("WLCRC supports 8/16/32/64-bit granularities")
        if endurance_threshold is not None and endurance_threshold < 0:
            raise ConfigurationError("endurance_threshold must be non-negative")
        name = f"wlcrc-{granularity_bits}"
        if endurance_threshold is not None:
            name = f"{name}-mo{endurance_threshold:g}"
        super().__init__(
            granularity_bits=granularity_bits,
            candidates=THREE_COSETS,
            reclaimed_bits=RECLAIMED_BITS_BY_GRANULARITY[granularity_bits],
            name=name,
            energy_model=energy_model,
        )
        self.endurance_threshold = endurance_threshold
        #: Number of per-block selector bits stored in each word.
        self.selector_bits = min(self.blocks_per_word, self.reclaimed_bits - 1)

    # ------------------------------------------------------------------ #
    # Candidate selection (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _select_candidates(
        self, block_costs: np.ndarray, block_flips: np.ndarray, stored_aux_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.granularity_bits == 64:
            # Degenerate case: unrestricted choice among C1, C2, C3 per word.
            stored_choice = np.minimum(stored_aux_values.astype(np.uint8), 2)[..., None]
            best = block_costs.argmin(axis=0).astype(np.uint8)  # (n, 8, 1)
            stored_cost = np.take_along_axis(
                np.moveaxis(block_costs, 0, -1), stored_choice[..., None].astype(np.intp), axis=-1
            )[..., 0]
            best_cost = block_costs.min(axis=0)
            choice = np.where(stored_cost <= best_cost, stored_choice, best)
            aux_values = choice[..., 0].astype(np.uint64)
            return choice, aux_values

        stored_family, stored_selector = self._unpack_aux(stored_aux_values)
        family_costs = np.stack(
            [
                np.minimum(block_costs[0], block_costs[1]).sum(axis=-1),
                np.minimum(block_costs[0], block_costs[2]).sum(axis=-1),
            ]
        )  # (2, n, 8)
        # Break exact ties in favour of the stored family so that rewriting
        # identical data leaves the auxiliary bits untouched.
        family = np.where(
            family_costs[0] < family_costs[1],
            np.uint8(0),
            np.where(family_costs[1] < family_costs[0], np.uint8(1), stored_family),
        ).astype(np.uint8)

        if self.endurance_threshold is not None:
            family = self._apply_endurance_objective(
                family, family_costs, block_costs, block_flips
            )

        alternative_cost = np.where(
            family[..., None] == 0, block_costs[1], block_costs[2]
        )  # (n, 8, blocks)
        selector = (alternative_cost < block_costs[0]).astype(np.uint8)
        # On per-block cost ties keep the stored selector when the family matches.
        tie = alternative_cost == block_costs[0]
        keep_stored = tie & (family == stored_family)[..., None]
        selector = np.where(keep_stored, stored_selector, selector).astype(np.uint8)
        choice = FAMILY_CANDIDATES[family[..., None], selector]
        aux_values = self._pack_aux(family, selector)
        return choice, aux_values

    def _apply_endurance_objective(
        self,
        family: np.ndarray,
        family_costs: np.ndarray,
        block_costs: np.ndarray,
        block_flips: np.ndarray,
    ) -> np.ndarray:
        """Re-pick the family by rewritten-cell count when energies are close.

        Ties on the rewritten-cell count fall back to the energy-based choice
        (which itself prefers the stored family on exact energy ties).
        """
        selector12 = (block_costs[1] < block_costs[0])
        selector13 = (block_costs[2] < block_costs[0])
        flips12 = np.where(selector12, block_flips[1], block_flips[0]).sum(axis=-1)
        flips13 = np.where(selector13, block_flips[2], block_flips[0]).sum(axis=-1)
        cost12, cost13 = family_costs[0], family_costs[1]
        scale = np.maximum(np.maximum(cost12, cost13), 1e-12)
        close = np.abs(cost12 - cost13) <= self.endurance_threshold * scale
        by_flips = np.where(
            flips13 < flips12, np.uint8(1), np.where(flips12 < flips13, np.uint8(0), family)
        ).astype(np.uint8)
        return np.where(close, by_flips, family).astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Auxiliary-bit packing
    # ------------------------------------------------------------------ #
    def _pack_aux(self, family: np.ndarray, selector: np.ndarray) -> np.ndarray:
        """Pack the family bit and selector bits into the reclaimed-bit value.

        Bit ``r-1`` (which lands on the word's most significant bit, b63) is
        the family bit; bits ``r-2 .. 0`` are the per-block selectors, block 0
        in the lowest position.
        """
        aux = family.astype(np.uint64) << np.uint64(self.reclaimed_bits - 1)
        shifts = np.arange(self.selector_bits, dtype=np.uint64)
        packed = (
            (selector[..., : self.selector_bits].astype(np.uint64) << shifts)
            .sum(axis=-1, dtype=np.uint64)
        )
        return aux | packed

    def _unpack_aux(self, aux_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split packed reclaimed-bit values into (family, per-block selectors)."""
        aux_values = np.asarray(aux_values, dtype=np.uint64)
        family = ((aux_values >> np.uint64(self.reclaimed_bits - 1)) & np.uint64(1)).astype(np.uint8)
        shifts = np.arange(self.blocks_per_word, dtype=np.uint64)
        selectors = ((aux_values[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)
        # Blocks past the stored selector width read as zero, as before.
        selectors[..., self.selector_bits:] = 0
        return family, selectors

    def _choices_from_aux(self, aux_values: np.ndarray) -> np.ndarray:
        aux_values = np.asarray(aux_values, dtype=np.uint64)
        if self.granularity_bits == 64:
            choice = np.minimum(aux_values.astype(np.uint8), 2)
            return choice[..., None]
        family, selector = self._unpack_aux(aux_values)
        return FAMILY_CANDIDATES[family[..., None], selector]
