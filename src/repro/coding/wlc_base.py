"""Shared machinery of the WLC-based encoders (WLCRC and WLC+cosets).

All WLC-based schemes follow the same structure (Section VI of the paper):

1. Test whether the line is Word-Level-Compressible: the top ``k`` bits of all
   eight 64-bit words must be identical, where ``k`` is one more than the
   number of bits the scheme needs to reclaim per word.
2. If the line is compressible, each word is encoded independently: its data
   blocks are mapped through coset candidates chosen by the scheme-specific
   selection rule, and the per-word auxiliary bits (candidate selectors) are
   stored in the reclaimed most-significant bits of that word.
3. If the line is not compressible, it is written raw (default mapping, plain
   differential write).
4. One *flag cell* appended to the line records whether the line was
   compressed; following the paper it uses the two lowest-energy states
   (S1 = compressed, S2 = raw), for a space overhead below 0.4 %.

Concrete subclasses only provide the per-word candidate-selection rule
(:meth:`WLCWordEncoderBase._select_candidates`) and the mapping between
auxiliary bit values and per-block candidate indices
(:meth:`WLCWordEncoderBase._choices_from_aux`).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Tuple

import numpy as np

from ..compression.wlc import WLCCompressor
from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from ..core.line import LineBatch
from ..core.symbols import (
    BITS_PER_WORD,
    SYMBOLS_PER_LINE,
    SYMBOLS_PER_WORD,
    WORDS_PER_LINE,
    symbols_to_words,
    words_to_symbols,
)
from .base import WriteEncoder, block_energy_costs, block_flip_costs

#: Flag-cell state marking a compressed (encoded) line.
FLAG_COMPRESSED_STATE = 0
#: Flag-cell state marking a raw (unencoded) line.
FLAG_RAW_STATE = 1


class WLCWordEncoderBase(WriteEncoder):
    """Base class of the word-level compressed coset encoders."""

    # Compressibility, candidate selection and the raw fallback are all
    # decided per line, so tiled fused-metrics evaluation is bit-identical
    # to a batch encode (covers WLCRC and the WLC+cosets variants).
    supports_fused_metrics = True

    def __init__(
        self,
        granularity_bits: int,
        candidates: np.ndarray,
        reclaimed_bits: int,
        name: str,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        super().__init__(energy_model)
        if granularity_bits not in (8, 16, 32, 64):
            raise ConfigurationError("WLC-based encodings support 8/16/32/64-bit blocks")
        if not 1 <= reclaimed_bits <= 32:
            raise ConfigurationError("reclaimed_bits must be between 1 and 32")
        self.granularity_bits = granularity_bits
        self.candidates = np.asarray(candidates, dtype=np.uint8)
        self.inverse_candidates = np.stack([invert_mapping(c) for c in self.candidates])
        self.reclaimed_bits = reclaimed_bits
        self.wlc = WLCCompressor(k=reclaimed_bits + 1)
        self.blocks_per_word = BITS_PER_WORD // granularity_bits
        self.block_cells = granularity_bits // 2
        #: Cells at the top of each word that hold auxiliary (reclaimed) bits.
        self.aux_region_cells = (reclaimed_bits + 1) // 2
        #: Cells of each word that carry coset-encoded data.
        self.data_region_cells = SYMBOLS_PER_WORD - self.aux_region_cells
        self.name = name

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def aux_cells(self) -> int:
        """One flag cell per line marks whether the line was compressed."""
        return 1

    @property
    def flag_cell_index(self) -> int:
        """Index of the compressibility flag cell within the written cells."""
        return SYMBOLS_PER_LINE

    def word_aux_mask(self) -> np.ndarray:
        """Per-word boolean mask of the cells attributed to auxiliary data."""
        mask = np.zeros(SYMBOLS_PER_WORD, dtype=bool)
        mask[self.data_region_cells:] = True
        return mask

    # ------------------------------------------------------------------ #
    # Scheme-specific hooks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _select_candidates(
        self,
        block_costs: np.ndarray,
        block_flips: np.ndarray,
        stored_aux_values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Choose a candidate per block and build per-word auxiliary values.

        Parameters
        ----------
        block_costs:
            ``(k, n, 8, blocks)`` per-block differential-write energies.
        block_flips:
            ``(k, n, 8, blocks)`` per-block rewritten-cell counts.
        stored_aux_values:
            ``(n, 8)`` integers currently held in the reclaimed bits of each
            stored word.  Cost ties are broken in favour of the stored
            candidate so that rewriting identical data leaves every auxiliary
            cell untouched (for raw stored lines the values are meaningless
            and only influence tie-breaks).

        Returns
        -------
        tuple
            ``(choice, aux_values)`` where ``choice`` has shape
            ``(n, 8, blocks)`` (candidate index per block) and ``aux_values``
            has shape ``(n, 8)`` (the integer written into the reclaimed bits
            of each word).
        """

    @abstractmethod
    def _choices_from_aux(self, aux_values: np.ndarray) -> np.ndarray:
        """Recover per-block candidate indices from the reclaimed-bit values."""

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        stored_data = stored_states[:, :SYMBOLS_PER_LINE]
        compressible = self.wlc.line_compressible(lines)

        raw_states = apply_mapping(DEFAULT_MAPPING, symbols)

        word_symbols = symbols.reshape(n, WORDS_PER_LINE, SYMBOLS_PER_WORD)
        stored_words = stored_data.reshape(n, WORDS_PER_LINE, SYMBOLS_PER_WORD)
        candidate_states = self.candidates[:, word_symbols]  # (k, n, 8, 32)
        # Per-block costs/flips via the shared per-candidate sweep helpers:
        # words become independent rows of a (k, n*8, 32) view, the auxiliary
        # region is excluded through active_cells, and the candidate axis is
        # walked one candidate at a time -- bounding the float temporary at
        # one candidate's worth.  The per-cell values and the per-block
        # reductions are elementwise/layout-identical to the historical
        # inline expressions, so results are bit-identical; flips are exact
        # 0/1 sums, so the int64 count cast to float64 matches the float sum.
        k = candidate_states.shape[0]
        shape = (k, n, WORDS_PER_LINE, self.blocks_per_word)
        flat_candidates = candidate_states.reshape(k, n * WORDS_PER_LINE, SYMBOLS_PER_WORD)
        flat_stored = np.ascontiguousarray(
            stored_words.reshape(n * WORDS_PER_LINE, SYMBOLS_PER_WORD)
        )
        block_costs = block_energy_costs(
            flat_candidates,
            flat_stored,
            self.energy_model,
            self.block_cells,
            active_cells=self.data_region_cells,
        ).reshape(shape)
        block_flips = block_flip_costs(
            flat_candidates,
            flat_stored,
            self.block_cells,
            active_cells=self.data_region_cells,
        ).astype(np.float64).reshape(shape)

        stored_aux_values = self._stored_aux_values(stored_words)
        choice, aux_values = self._select_candidates(block_costs, block_flips, stored_aux_values)

        per_cell_choice = np.repeat(choice, self.block_cells, axis=2)  # (n, 8, 32)
        stacked = np.moveaxis(candidate_states, 0, -1)  # (n, 8, 32, k)
        encoded_states = np.take_along_axis(
            stacked, per_cell_choice[..., None].astype(np.intp), axis=-1
        )[..., 0]
        # Auxiliary-region cells store the reclaimed bits under the default mapping.
        words_with_aux = self.wlc.insert_reclaimed(lines.words, aux_values)
        aux_symbols = words_to_symbols(words_with_aux).reshape(n, WORDS_PER_LINE, SYMBOLS_PER_WORD)
        encoded_states[..., self.data_region_cells:] = apply_mapping(
            DEFAULT_MAPPING, aux_symbols[..., self.data_region_cells:]
        )
        encoded_states = encoded_states.reshape(n, SYMBOLS_PER_LINE).astype(np.uint8)

        data_states = np.where(compressible[:, None], encoded_states, raw_states).astype(np.uint8)
        flag_states = np.where(compressible, FLAG_COMPRESSED_STATE, FLAG_RAW_STATE).astype(np.uint8)
        states = np.concatenate([data_states, flag_states[:, None]], axis=1)

        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        line_aux = np.tile(self.word_aux_mask(), WORDS_PER_LINE)
        aux_mask[:, :SYMBOLS_PER_LINE] = compressible[:, None] & line_aux[None, :]
        aux_mask[:, self.flag_cell_index] = True
        return states, aux_mask, compressible, compressible.copy()

    def _stored_aux_values(self, stored_words: np.ndarray) -> np.ndarray:
        """Reclaimed-bit values currently stored in each word's auxiliary cells.

        ``stored_words`` is the ``(n, 8, 32)`` array of stored cell states.
        The auxiliary region is always written under the default mapping, so
        inverting it recovers the stored selector bits.
        """
        inverse_default = invert_mapping(DEFAULT_MAPPING)
        aux_symbols = inverse_default[stored_words[..., self.data_region_cells:]]
        positions = np.arange(self.data_region_cells, SYMBOLS_PER_WORD)
        shifts = positions.astype(np.uint64) * np.uint64(2)
        partial_words = (aux_symbols.astype(np.uint64) << shifts).sum(axis=-1, dtype=np.uint64)
        return partial_words >> np.uint64(BITS_PER_WORD - self.reclaimed_bits)

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        n = states.shape[0]
        data_states = states[:, :SYMBOLS_PER_LINE]
        flag = states[:, self.flag_cell_index]
        compressed = flag == FLAG_COMPRESSED_STATE

        inverse_default = invert_mapping(DEFAULT_MAPPING)
        raw_symbols = inverse_default[data_states]

        word_states = data_states.reshape(n, WORDS_PER_LINE, SYMBOLS_PER_WORD)
        # Recover the stored auxiliary (reclaimed-bit) values from the aux region.
        aux_region_symbols = inverse_default[word_states[..., self.data_region_cells:]]
        aux_region_positions = np.arange(self.data_region_cells, SYMBOLS_PER_WORD)
        shifts = (aux_region_positions.astype(np.uint64) * np.uint64(2))
        partial_words = (aux_region_symbols.astype(np.uint64) << shifts).sum(
            axis=-1, dtype=np.uint64
        )
        aux_values = partial_words >> np.uint64(BITS_PER_WORD - self.reclaimed_bits)
        choice = self._choices_from_aux(aux_values)

        per_cell_choice = np.repeat(choice, self.block_cells, axis=2)
        inverse = self.inverse_candidates[per_cell_choice]  # (n, 8, 32, 4)
        decoded_symbols = np.take_along_axis(
            inverse, word_states[..., None].astype(np.intp), axis=-1
        )[..., 0]
        # The aux region (including any data bit sharing a cell with aux bits)
        # was stored under the default mapping.
        decoded_symbols[..., self.data_region_cells:] = aux_region_symbols
        decoded_words = symbols_to_words(
            decoded_symbols.reshape(n, SYMBOLS_PER_LINE).astype(np.uint8)
        )
        decoded_words = self.wlc.sign_extend(decoded_words)

        raw_words = symbols_to_words(raw_symbols.astype(np.uint8))
        words = np.where(compressed[:, None], decoded_words, raw_words)
        return LineBatch(words)
