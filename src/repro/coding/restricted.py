"""Restricted coset coding at memory-line scope (Section V of the paper).

Instead of letting every data block pick any of the candidates C1, C2, C3
independently (the unrestricted *3cosets* scheme), restricted coset coding
groups the candidates into two families -- ``{C1, C2}`` and ``{C1, C3}`` --
and forces every block of a memory line to draw from the *same* family.  The
line is encoded twice (once per family) and the cheaper result is kept.  The
auxiliary information shrinks from two bits per block to one global
family-selector bit per line plus one bit per block; because consecutive words
of a line share bit-pattern characteristics, the restriction costs very little
energy (Figure 5).

This module implements the line-scope variant called ``3-r-cosets`` in
Figure 5; the word-scope variant embedded in compressed lines is
:class:`repro.coding.wlcrc.WLCRCEncoder`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.cosets import THREE_COSETS, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, SYMBOLS_PER_LINE
from .base import (
    WriteEncoder,
    block_energy_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)

#: Candidate index used by each (family, selector-bit) combination.
#: Family 0 may use C1 (bit 0) or C2 (bit 1); family 1 may use C1 or C3.
FAMILY_CANDIDATES = np.array([[0, 1], [0, 2]], dtype=np.uint8)


class RestrictedCosetEncoder(WriteEncoder):
    """Line-scope restricted coset coding over candidates C1, C2 and C3."""

    # Family selection is per line (the restriction scope IS the line), so
    # tiled fused-metrics evaluation is bit-identical to a batch encode.
    supports_fused_metrics = True

    def __init__(
        self,
        granularity_bits: int = 16,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        super().__init__(energy_model)
        if granularity_bits % 2 or BITS_PER_LINE % granularity_bits:
            raise ConfigurationError("granularity_bits must evenly divide the 512-bit line")
        self.granularity_bits = granularity_bits
        self.block_cells = granularity_bits // 2
        self.num_blocks = SYMBOLS_PER_LINE // self.block_cells
        self.candidates = THREE_COSETS
        self.inverse_candidates = np.stack([invert_mapping(c) for c in self.candidates])
        self.name = f"3-r-cosets-{granularity_bits}"

    @property
    def aux_cells(self) -> int:
        """One family bit per line plus one selector bit per block, two bits per cell."""
        return (1 + self.num_blocks + 1) // 2

    @property
    def aux_bits(self) -> int:
        """Number of auxiliary bits per line (family bit + per-block selectors)."""
        return 1 + self.num_blocks

    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        data_stored = stored_states[:, :SYMBOLS_PER_LINE]
        candidate_states = self.candidates[:, symbols]  # (3, n, cells)
        costs = block_energy_costs(candidate_states, data_stored, self.energy_model, self.block_cells)
        # costs has shape (3, n, blocks); family 0 = {C1, C2}, family 1 = {C1, C3}.
        family_costs = np.stack(
            [
                np.minimum(costs[0], costs[1]).sum(axis=-1),
                np.minimum(costs[0], costs[2]).sum(axis=-1),
            ]
        )  # (2, n)
        family = family_costs.argmin(axis=0).astype(np.uint8)  # (n,)
        alternative = np.where(family[:, None] == 0, costs[1], costs[2])  # (n, blocks)
        selector = (alternative < costs[0]).astype(np.uint8)  # (n, blocks)
        choice = FAMILY_CANDIDATES[family[:, None], selector]  # (n, blocks)
        data_states = select_states_per_block(candidate_states, choice, self.block_cells)
        bits = np.concatenate([family[:, None], selector], axis=1).astype(np.uint8)
        aux_states = pack_bits_to_states(bits)
        states = np.concatenate([data_states, aux_states], axis=1).astype(np.uint8)
        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        aux_mask[:, SYMBOLS_PER_LINE:] = True
        compressed = np.zeros(n, dtype=bool)
        encoded = np.ones(n, dtype=bool)
        return states, aux_mask, compressed, encoded

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        data_states = states[:, :SYMBOLS_PER_LINE]
        aux_states = states[:, SYMBOLS_PER_LINE:]
        bits = unpack_states_to_bits(aux_states, self.aux_bits)
        family = bits[:, 0]
        selector = bits[:, 1:]
        choice = FAMILY_CANDIDATES[family[:, None], selector]
        per_cell_choice = np.repeat(choice, self.block_cells, axis=1)
        inverse = self.inverse_candidates[per_cell_choice]
        symbols = np.take_along_axis(inverse, data_states[..., None].astype(np.intp), axis=-1)[..., 0]
        return LineBatch.from_symbols(symbols.astype(np.uint8))
