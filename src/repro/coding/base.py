"""Write-encoder interface and shared machinery of all encoding schemes.

Every scheme in :mod:`repro.coding` transforms a memory-line *write request*
(the new data value plus the currently stored content) into the array of cell
*states* that will actually be programmed into the PCM line, together with any
auxiliary cells the scheme needs.  The evaluation harness then derives write
energy, updated-cell count and disturbance errors from the difference between
the produced states and the stored states.

The central abstraction is :class:`WriteEncoder` with one required hook,
:meth:`WriteEncoder._encode_against_states`, which encodes a batch of new data
values given the states currently stored in the target cells.  On top of that
hook the base class provides:

* :meth:`WriteEncoder.encode_batch` -- the paper's trace-driven evaluation
  path.  The stored states of the *old* data value are reconstructed by
  encoding the old value against a fresh (all-RESET) background, mirroring the
  trace format used by the paper (each trace record carries the value to be
  written and the value being overwritten).
* :meth:`WriteEncoder.encode_against_stored` -- the stateful path used by the
  PCM device model, where the caller supplies the actual stored states.
* :meth:`WriteEncoder.decode_states` -- recover the original data from stored
  states, used by round-trip tests and by the PCM read path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import EncodingError
from ..core.line import LineBatch
from ..core.symbols import SYMBOLS_PER_LINE


@dataclass
class EncodedBatch:
    """Result of encoding a batch of write requests.

    Attributes
    ----------
    states:
        ``(n, total_cells)`` array of target cell states for the new data.
    old_states:
        ``(n, total_cells)`` array of the states currently stored in those
        cells (what the new states are differentiated against).
    aux_mask:
        ``(n, total_cells)`` boolean array; ``True`` marks cells that hold
        auxiliary (encoding metadata) information rather than data bits.
    compressed:
        ``(n,)`` boolean array; ``True`` when the line was compressed by the
        scheme's compression front-end (always ``False`` for schemes without
        compression).
    encoded:
        ``(n,)`` boolean array; ``True`` when the line was actually encoded
        (as opposed to being written raw because compression failed).
    """

    states: np.ndarray
    old_states: np.ndarray
    aux_mask: np.ndarray
    compressed: np.ndarray
    encoded: np.ndarray

    def __post_init__(self) -> None:
        if self.states.shape != self.old_states.shape:
            raise EncodingError("states and old_states must have the same shape")
        if self.aux_mask.shape != self.states.shape:
            raise EncodingError("aux_mask must match the states shape")

    @property
    def changed(self) -> np.ndarray:
        """Boolean array of cells whose state changes (cells that are rewritten)."""
        return self.states != self.old_states

    @property
    def total_cells(self) -> int:
        """Number of cells written per request (data + auxiliary)."""
        return int(self.states.shape[1])

    def __len__(self) -> int:
        return int(self.states.shape[0])

    def window(self, start: int, stop: int) -> "EncodedBatch":
        """View of the requests in ``[start, stop)`` (no copies).

        Encoding is per-line, so a window of a super-batch encode is exactly
        the encode of those lines alone; the evaluation layer slices each
        coalesced encoder batch back into its original ``chunk_size`` windows
        to keep metric accumulation (and its float rounding) identical to the
        per-chunk path.
        """
        return EncodedBatch(
            states=self.states[start:stop],
            old_states=self.old_states[start:stop],
            aux_mask=self.aux_mask[start:stop],
            compressed=self.compressed[start:stop],
            encoded=self.encoded[start:stop],
        )


class WriteEncoder(ABC):
    """Base class of every write-encoding scheme."""

    #: Scheme identifier used by the registry, reports and benches.
    name: str = "encoder"

    #: Whether the evaluation layer may drive this encoder through the fused
    #: tiled encode+metrics path (``repro.evaluation.runner
    #: .encode_metrics_batch``).  Opting in asserts that encoding is strictly
    #: *per line* -- encoding any subset of a batch yields exactly the rows a
    #: full-batch encode would -- which is what makes tile-wise encoding
    #: bit-identical to a single super-batch encode.  Encoders with cross-line
    #: state must leave this ``False`` to keep the materialising path.
    supports_fused_metrics: bool = False

    def __init__(self, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        self.energy_model = energy_model

    # ------------------------------------------------------------------ #
    # Scheme geometry
    # ------------------------------------------------------------------ #
    @property
    def aux_cells(self) -> int:
        """Number of auxiliary cells appended beyond the 256 data cells."""
        return 0

    @property
    def total_cells(self) -> int:
        """Total number of cells written per request."""
        return SYMBOLS_PER_LINE + self.aux_cells

    # ------------------------------------------------------------------ #
    # Required hook
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Encode ``lines`` given the states currently stored in the cells.

        Returns ``(states, aux_mask, compressed, encoded)`` where ``states``
        and ``aux_mask`` have shape ``(n, total_cells)`` and the last two have
        shape ``(n,)``.
        """

    @abstractmethod
    def decode_states(self, states: np.ndarray) -> LineBatch:
        """Recover the original data lines from stored cell states."""

    # ------------------------------------------------------------------ #
    # Public encoding entry points
    # ------------------------------------------------------------------ #
    def fresh_states(self, count: int) -> np.ndarray:
        """States of freshly RESET cells (all S1)."""
        return np.zeros((count, self.total_cells), dtype=np.uint8)

    def encode_reference(self, lines: LineBatch) -> np.ndarray:
        """Stored states of ``lines`` assuming they were written onto fresh cells."""
        states, _, _, _ = self._encode_against_states(lines, self.fresh_states(len(lines)))
        return states

    def encode_against_stored(self, lines: LineBatch, stored_states: np.ndarray) -> EncodedBatch:
        """Encode new data against explicitly supplied stored states."""
        stored_states = np.asarray(stored_states, dtype=np.uint8)
        if stored_states.shape != (len(lines), self.total_cells):
            raise EncodingError(
                f"stored_states must have shape ({len(lines)}, {self.total_cells})"
            )
        states, aux_mask, compressed, encoded = self._encode_against_states(lines, stored_states)
        return EncodedBatch(
            states=states,
            old_states=stored_states,
            aux_mask=aux_mask,
            compressed=compressed,
            encoded=encoded,
        )

    def encode_batch(self, new: LineBatch, old: LineBatch) -> EncodedBatch:
        """Encode trace-style write requests given old and new data values."""
        if len(new) != len(old):
            raise EncodingError("old and new batches must have the same length")
        old_states = self.encode_reference(old)
        return self.encode_against_stored(new, old_states)

    def roundtrip(self, lines: LineBatch) -> LineBatch:
        """Encode onto fresh cells and decode again (used by tests)."""
        return self.decode_states(self.encode_reference(lines))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------- #
# Shared helpers used by several schemes
# ---------------------------------------------------------------------- #
def pack_bits_to_states(bits: np.ndarray, mapping: np.ndarray = DEFAULT_MAPPING) -> np.ndarray:
    """Pack auxiliary bits into cell states two bits per cell.

    ``bits`` has shape ``(n, nbits)``; the number of bits is padded with zeros
    to an even count.  Bit ``2i`` becomes the low bit and bit ``2i+1`` the high
    bit of symbol ``i``, which is then mapped to a state with ``mapping``
    (default mapping C1, so the all-zero auxiliary value lands in the cheapest
    state S1).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise EncodingError("bits must be a 2-D array (batch, nbits)")
    if bits.shape[1] % 2:
        bits = np.concatenate([bits, np.zeros((bits.shape[0], 1), dtype=np.uint8)], axis=1)
    symbols = (bits[:, 0::2] | (bits[:, 1::2] << 1)).astype(np.uint8)
    return apply_mapping(mapping, symbols)


def unpack_states_to_bits(
    states: np.ndarray, nbits: int, mapping: np.ndarray = DEFAULT_MAPPING
) -> np.ndarray:
    """Inverse of :func:`pack_bits_to_states`: recover ``nbits`` auxiliary bits."""
    states = np.asarray(states, dtype=np.uint8)
    symbols = invert_mapping(mapping)[states]
    low = (symbols & 1).astype(np.uint8)
    high = ((symbols >> 1) & 1).astype(np.uint8)
    bits = np.empty((states.shape[0], states.shape[1] * 2), dtype=np.uint8)
    bits[:, 0::2] = low
    bits[:, 1::2] = high
    return bits[:, :nbits]


def select_states_per_block(
    candidate_states: np.ndarray, choice: np.ndarray, block_cells: int
) -> np.ndarray:
    """Gather the chosen candidate's states for every block.

    Parameters
    ----------
    candidate_states:
        Array of shape ``(k, n, cells)`` with the cell states each candidate
        would program.
    choice:
        Array of shape ``(n, blocks)`` with the winning candidate per block,
        where ``cells == blocks * block_cells``.
    block_cells:
        Number of cells per block.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, cells)`` with the per-cell states of the winner.
    """
    k, n, cells = candidate_states.shape
    blocks = cells // block_cells
    if choice.shape != (n, blocks):
        raise EncodingError("choice has the wrong shape for this block structure")
    per_cell_choice = np.repeat(choice, block_cells, axis=1)
    stacked = np.moveaxis(candidate_states, 0, -1)
    gathered = np.take_along_axis(stacked, per_cell_choice[..., None], axis=-1)
    return gathered[..., 0]


def _per_candidate_energy_cells(
    candidate: np.ndarray,
    stored_states: np.ndarray,
    weights: np.ndarray,
    active_cells: int,
) -> np.ndarray:
    """Per-cell differential-write energy of ONE candidate (``(n, cells)``).

    Cells at or past ``active_cells`` cost 0 (the WLC auxiliary region).
    Dispatches to the active backend's fused ``diff_energy_cells`` kernel
    when available; the numpy fallback computes the identical elementwise
    values (gather x 1.0/0.0 mask), so both are bit-identical.
    """
    from ..compression.backend import get_backend, kernel_timer

    backend = get_backend()
    kernel = backend.compiled.get("diff_energy_cells")
    if (
        kernel is not None
        and candidate.dtype == np.uint8
        and stored_states.dtype == np.uint8
        and candidate.flags.c_contiguous
        and stored_states.flags.c_contiguous
    ):
        with kernel_timer(backend.name, "diff_energy_cells"):
            return kernel(candidate, stored_states, weights, active_cells)
    per_cell = weights[candidate] * (candidate != stored_states)
    if active_cells < candidate.shape[1]:
        per_cell[:, active_cells:] = 0.0
    return per_cell


def block_energy_costs(
    candidate_states: np.ndarray,
    stored_states: np.ndarray,
    energy_model: EnergyModel,
    block_cells: int,
    active_cells: Optional[int] = None,
) -> np.ndarray:
    """Differential-write energy of every block under every candidate.

    Parameters
    ----------
    candidate_states:
        ``(k, n, cells)`` candidate cell states.
    stored_states:
        ``(n, cells)`` currently stored states.
    energy_model:
        Cell energy model.
    block_cells:
        Number of cells per encoding block.
    active_cells:
        Cells per row that carry coset-encoded data; cells at or past this
        index contribute zero cost (WLC's reclaimed auxiliary region).
        Defaults to every cell.

    Returns
    -------
    numpy.ndarray
        ``(k, n, blocks)`` float array of per-block write energies.

    Notes
    -----
    The candidate axis is processed one candidate at a time, so the float64
    per-cell temporary is ``(n, cells)`` instead of ``(k, n, cells)`` --
    peak memory per sweep drops by ``1/k`` with bit-identical results: each
    output element reduces the same ``block_cells`` contiguous floats with
    the same numpy ``.sum`` regardless of how the candidate axis is walked.
    """
    k, n, cells = candidate_states.shape
    active = cells if active_cells is None else active_cells
    weights = energy_model.write_energy_per_state
    costs = np.empty((k, n, cells // block_cells), dtype=np.float64)
    for index in range(k):
        per_cell = _per_candidate_energy_cells(
            candidate_states[index], stored_states, weights, active
        )
        costs[index] = per_cell.reshape(n, cells // block_cells, block_cells).sum(axis=-1)
    return costs


def block_flip_costs(
    candidate_states: np.ndarray,
    stored_states: np.ndarray,
    block_cells: int,
    active_cells: Optional[int] = None,
) -> np.ndarray:
    """Number of rewritten cells per block under every candidate (endurance cost).

    Like :func:`block_energy_costs` this walks the candidate axis one
    candidate at a time (bounding the temporary at ``(n, cells)``) and
    dispatches to the backend's ``flip_blocks`` kernel when one is
    available; counts are exact integers, so any evaluation order is
    bit-identical.
    """
    from ..compression.backend import get_backend, kernel_timer

    k, n, cells = candidate_states.shape
    active = cells if active_cells is None else active_cells
    backend = get_backend()
    kernel = backend.compiled.get("flip_blocks")
    flips = np.empty((k, n, cells // block_cells), dtype=np.int64)
    for index in range(k):
        candidate = candidate_states[index]
        if (
            kernel is not None
            and candidate.dtype == np.uint8
            and stored_states.dtype == np.uint8
            and candidate.flags.c_contiguous
            and stored_states.flags.c_contiguous
        ):
            with kernel_timer(backend.name, "flip_blocks"):
                flips[index] = kernel(candidate, stored_states, block_cells, active)
        else:
            changed = candidate != stored_states
            if active < cells:
                changed[:, active:] = False
            flips[index] = changed.reshape(n, cells // block_cells, block_cells).sum(axis=-1)
    return flips
