"""DIN: 3-to-4-bit expansion coding gated by FPC+BDI compression.

DIN [Jiang et al., DSN 2014] was designed to mitigate write disturbance in
super-dense PCM.  It compresses the memory line with FPC+BDI and, when the
line shrinks enough, expands every 3 compressed bits into a 4-bit codeword
drawn from the cheapest (lowest write-energy / disturbance-prone) symbol
patterns, then protects the line with a 20-bit BCH code that corrects two
write-disturbance errors during write verification.  Lines that do not
compress far enough are written raw -- which, per Figure 4 of the paper,
happens to roughly 70 % of memory lines.

Layout of an encoded line (bit positions from the least significant bit):

``[ 9-bit length | compressed stream | padding ] -> 3-to-4 expansion -> 492 bits``
``[ 492 expanded bits | 20 BCH parity bits ] = 512 bits``

The 9-bit length header makes decoding self-contained; it is charged against
the same 369-bit compression budget the paper quotes, so the FPC+BDI output
itself must fit in 360 bits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..compression.fpc_bdi import FPCBDICompressor
from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import EncodingError
from ..core.line import LineBatch
from ..core.symbols import (
    BITS_PER_LINE,
    SYMBOLS_PER_LINE,
    bits_to_symbols,
    symbols_to_bits,
    symbols_to_words,
)
from ..ecc.bch import BCHCode
from .base import WriteEncoder
from .wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE

#: Bits reserved for the compressed-length header inside the encoded payload.
LENGTH_HEADER_BITS = 9
#: Maximum FPC+BDI output size (bits) for a line to be DIN-encodable.
MAX_COMPRESSED_BITS = 360
#: Number of expanded (3-to-4 coded) bits stored per line.
EXPANDED_BITS = 492
#: Number of BCH parity bits appended per encoded line.
BCH_PARITY_BITS = 20


def build_din_mapping(energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> Tuple[np.ndarray, np.ndarray]:
    """Build the 3-bit-to-4-bit DIN expansion table and its inverse.

    The eight 4-bit codewords are the patterns whose two MLC symbols have the
    lowest total write energy under the default mapping, so the expansion
    steers the stored cells away from the expensive (and disturbance-prone)
    states.  Codeword 0 is always ``0000`` so zero padding stays benign.
    """
    weights = energy_model.write_energy_per_state
    default = DEFAULT_MAPPING
    scored = []
    for pattern in range(16):
        low_symbol = pattern & 0b11
        high_symbol = (pattern >> 2) & 0b11
        energy = weights[default[low_symbol]] + weights[default[high_symbol]]
        scored.append((energy, pattern))
    scored.sort()
    forward = np.array([pattern for _, pattern in scored[:8]], dtype=np.uint8)
    inverse = np.full(16, 0, dtype=np.uint8)
    for value, pattern in enumerate(forward):
        inverse[pattern] = value
    return forward, inverse


class DINEncoder(WriteEncoder):
    """DIN baseline: FPC+BDI gating, 3-to-4-bit expansion and BCH protection."""

    name = "din"

    def __init__(self, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        super().__init__(energy_model)
        self.compressor = FPCBDICompressor()
        self.bch = BCHCode(m=10, t=2, data_bits=EXPANDED_BITS)
        self.expand_table, self.contract_table = build_din_mapping(energy_model)

    @property
    def aux_cells(self) -> int:
        """One flag cell distinguishes encoded lines from raw lines."""
        return 1

    @property
    def flag_cell_index(self) -> int:
        """Index of the encoded/raw flag cell."""
        return SYMBOLS_PER_LINE

    # ------------------------------------------------------------------ #
    # Per-line encode / decode of the DIN payload
    # ------------------------------------------------------------------ #
    def _encode_line_bits(self, words: np.ndarray) -> np.ndarray:
        """Build the 512-bit encoded payload of one compressible line."""
        compressed = self.compressor.compress_line(words)
        size = compressed.size_bits
        if size > MAX_COMPRESSED_BITS:
            raise EncodingError("line exceeds the DIN compression budget")
        header = np.array([(size >> b) & 1 for b in range(LENGTH_HEADER_BITS)], dtype=np.uint8)
        payload = np.concatenate([header, compressed.bits])
        padded_len = ((payload.shape[0] + 2) // 3) * 3
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[: payload.shape[0]] = payload
        groups = padded.reshape(-1, 3)
        values = groups[:, 0] | (groups[:, 1] << 1) | (groups[:, 2] << 2)
        codewords = self.expand_table[values]
        expanded = np.zeros(EXPANDED_BITS, dtype=np.uint8)
        for i, codeword in enumerate(codewords):
            base = 4 * i
            expanded[base + 0] = codeword & 1
            expanded[base + 1] = (codeword >> 1) & 1
            expanded[base + 2] = (codeword >> 2) & 1
            expanded[base + 3] = (codeword >> 3) & 1
        parity = self.bch.parity(expanded)
        line_bits = np.zeros(BITS_PER_LINE, dtype=np.uint8)
        line_bits[:EXPANDED_BITS] = expanded
        line_bits[EXPANDED_BITS:EXPANDED_BITS + BCH_PARITY_BITS] = parity
        return line_bits

    def _decode_line_bits(self, line_bits: np.ndarray) -> np.ndarray:
        """Recover the original words of one encoded line."""
        expanded = np.asarray(line_bits[:EXPANDED_BITS], dtype=np.uint8)
        groups = expanded.reshape(-1, 4)
        codewords = (
            groups[:, 0] | (groups[:, 1] << 1) | (groups[:, 2] << 2) | (groups[:, 3] << 3)
        )
        values = self.contract_table[codewords]
        payload = np.zeros(values.shape[0] * 3, dtype=np.uint8)
        payload[0::3] = values & 1
        payload[1::3] = (values >> 1) & 1
        payload[2::3] = (values >> 2) & 1
        size = 0
        for b in range(LENGTH_HEADER_BITS):
            size |= int(payload[b]) << b
        if size > MAX_COMPRESSED_BITS:
            raise EncodingError(f"invalid DIN length header: {size}")
        stream = payload[LENGTH_HEADER_BITS:LENGTH_HEADER_BITS + size]
        from ..compression.base import CompressedLine

        return self.compressor.decompress_line(CompressedLine(bits=stream, compressor="fpc+bdi"))

    # ------------------------------------------------------------------ #
    # WriteEncoder interface
    # ------------------------------------------------------------------ #
    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        raw_states = apply_mapping(DEFAULT_MAPPING, symbols)
        sizes = self.compressor.sizes_bits(lines)
        encodable = sizes <= MAX_COMPRESSED_BITS

        data_states = raw_states.copy()
        for index in np.nonzero(encodable)[0]:
            line_bits = self._encode_line_bits(lines.words[index])
            line_symbols = bits_to_symbols(line_bits)
            data_states[index] = apply_mapping(DEFAULT_MAPPING, line_symbols)

        flag_states = np.where(encodable, FLAG_COMPRESSED_STATE, FLAG_RAW_STATE).astype(np.uint8)
        states = np.concatenate([data_states, flag_states[:, None]], axis=1).astype(np.uint8)

        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        # For encoded lines the expansion and parity bits are all metadata; the
        # paper attributes the entire encoded payload to the data component, so
        # only the flag cell is counted as auxiliary here.
        aux_mask[:, self.flag_cell_index] = True
        compressed = encodable.copy()
        return states, aux_mask, compressed, encodable

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        inverse = invert_mapping(DEFAULT_MAPPING)
        data_symbols = inverse[states[:, :SYMBOLS_PER_LINE]]
        flag = states[:, self.flag_cell_index]
        words = symbols_to_words(data_symbols.astype(np.uint8))
        decoded = words.copy()
        for index in np.nonzero(flag == FLAG_COMPRESSED_STATE)[0]:
            line_bits = symbols_to_bits(data_symbols[index])
            decoded[index] = self._decode_line_bits(line_bits)
        return LineBatch(decoded)
