"""DIN: 3-to-4-bit expansion coding gated by FPC+BDI compression.

DIN [Jiang et al., DSN 2014] was designed to mitigate write disturbance in
super-dense PCM.  It compresses the memory line with FPC+BDI and, when the
line shrinks enough, expands every 3 compressed bits into a 4-bit codeword
drawn from the cheapest (lowest write-energy / disturbance-prone) symbol
patterns, then protects the line with a 20-bit BCH code that corrects two
write-disturbance errors during write verification.  Lines that do not
compress far enough are written raw -- which, per Figure 4 of the paper,
happens to roughly 70 % of memory lines.

Layout of an encoded line (bit positions from the least significant bit):

``[ 9-bit length | compressed stream | padding ] -> 3-to-4 expansion -> 492 bits``
``[ 492 expanded bits | 20 BCH parity bits ] = 512 bits``

The 9-bit length header makes decoding self-contained; it is charged against
the same 369-bit compression budget the paper quotes, so the FPC+BDI output
itself must fit in 360 bits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..compression.fpc_bdi import FPCBDICompressor
from ..compression.kernels import PackedBits, pack_fields, unpack_fields
from ..core.cosets import DEFAULT_MAPPING, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import EncodingError
from ..core.line import LineBatch
from ..core.symbols import (
    BITS_PER_LINE,
    SYMBOLS_PER_LINE,
    bits_to_symbols,
    symbols_to_bits,
    symbols_to_words,
)
from ..ecc.bch import BCHCode
from .base import WriteEncoder
from .wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE

#: Bits reserved for the compressed-length header inside the encoded payload.
LENGTH_HEADER_BITS = 9
#: Maximum FPC+BDI output size (bits) for a line to be DIN-encodable.
MAX_COMPRESSED_BITS = 360
#: Number of expanded (3-to-4 coded) bits stored per line.
EXPANDED_BITS = 492
#: Number of BCH parity bits appended per encoded line.
BCH_PARITY_BITS = 20


def build_din_mapping(energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> Tuple[np.ndarray, np.ndarray]:
    """Build the 3-bit-to-4-bit DIN expansion table and its inverse.

    The eight 4-bit codewords are the patterns whose two MLC symbols have the
    lowest total write energy under the default mapping, so the expansion
    steers the stored cells away from the expensive (and disturbance-prone)
    states.  Codeword 0 is always ``0000`` so zero padding stays benign.
    """
    weights = energy_model.write_energy_per_state
    default = DEFAULT_MAPPING
    scored = []
    for pattern in range(16):
        low_symbol = pattern & 0b11
        high_symbol = (pattern >> 2) & 0b11
        energy = weights[default[low_symbol]] + weights[default[high_symbol]]
        scored.append((energy, pattern))
    scored.sort()
    forward = np.array([pattern for _, pattern in scored[:8]], dtype=np.uint8)
    inverse = np.full(16, 0, dtype=np.uint8)
    for value, pattern in enumerate(forward):
        inverse[pattern] = value
    return forward, inverse


class DINEncoder(WriteEncoder):
    """DIN baseline: FPC+BDI gating, 3-to-4-bit expansion and BCH protection."""

    name = "din"

    def __init__(self, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        super().__init__(energy_model)
        self.compressor = FPCBDICompressor()
        self.bch = BCHCode(m=10, t=2, data_bits=EXPANDED_BITS)
        self.expand_table, self.contract_table = build_din_mapping(energy_model)

    @property
    def aux_cells(self) -> int:
        """One flag cell distinguishes encoded lines from raw lines."""
        return 1

    @property
    def flag_cell_index(self) -> int:
        """Index of the encoded/raw flag cell."""
        return SYMBOLS_PER_LINE

    # ------------------------------------------------------------------ #
    # Batched encode / decode of the DIN payload
    # ------------------------------------------------------------------ #
    def _encode_lines_bits(self, lines: LineBatch) -> np.ndarray:
        """Build the 512-bit encoded payloads of a batch of compressible lines.

        The whole pipeline -- compression, length header, 3-to-4 expansion --
        is vectorised.  Zero padding up to the full 369-bit budget is benign:
        codeword 0 of the DIN table is ``0000`` by construction, so expanding
        the padded groups writes the same zeros the per-line path produced.
        The BCH parity is batched too: one GF(2) reduction against the code's
        shifted-remainder table (:meth:`repro.ecc.bch.BCHCode.parity_batch`)
        replaces the per-line polynomial carry chain.
        """
        packed = self.compressor.compress_batch(lines)
        sizes = packed.lengths
        if np.any(sizes > MAX_COMPRESSED_BITS):
            raise EncodingError("line exceeds the DIN compression budget")
        n = len(lines)
        budget = LENGTH_HEADER_BITS + MAX_COMPRESSED_BITS
        payload = np.zeros((n, budget), dtype=np.uint8)
        payload[:, :LENGTH_HEADER_BITS] = unpack_fields(
            sizes.astype(np.uint64), LENGTH_HEADER_BITS
        )
        width = min(packed.bits.shape[1], MAX_COMPRESSED_BITS)
        payload[:, LENGTH_HEADER_BITS:LENGTH_HEADER_BITS + width] = packed.bits[:, :width]
        groups = payload.reshape(n, -1, 3)
        values = groups[..., 0] | (groups[..., 1] << 1) | (groups[..., 2] << 2)
        codewords = self.expand_table[values]
        expanded = unpack_fields(codewords.astype(np.uint64), 4).reshape(n, -1)
        line_bits = np.zeros((n, BITS_PER_LINE), dtype=np.uint8)
        line_bits[:, :expanded.shape[1]] = expanded
        line_bits[:, EXPANDED_BITS:EXPANDED_BITS + BCH_PARITY_BITS] = (
            self.bch.parity_batch(line_bits[:, :EXPANDED_BITS])
        )
        return line_bits

    def _encode_line_bits(self, words: np.ndarray) -> np.ndarray:
        """Build the 512-bit encoded payload of one compressible line."""
        return self._encode_lines_bits(
            LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))
        )[0]

    def _decode_lines_bits(self, line_bits: np.ndarray) -> np.ndarray:
        """Recover the original words of a batch of encoded lines."""
        line_bits = np.asarray(line_bits, dtype=np.uint8)
        n = line_bits.shape[0]
        expanded = line_bits[:, :EXPANDED_BITS]
        codewords = pack_fields(expanded.reshape(n, -1, 4))
        values = self.contract_table[codewords.astype(np.intp)]
        payload = unpack_fields(values.astype(np.uint64), 3).reshape(n, -1)
        sizes = pack_fields(payload[:, :LENGTH_HEADER_BITS]).astype(np.int64)
        bad = sizes[sizes > MAX_COMPRESSED_BITS]
        if bad.size:
            raise EncodingError(f"invalid DIN length header: {int(bad[0])}")
        packed = PackedBits(
            payload[:, LENGTH_HEADER_BITS:], sizes, self.compressor.name
        )
        return self.compressor.decompress_batch(packed)

    def _decode_line_bits(self, line_bits: np.ndarray) -> np.ndarray:
        """Recover the original words of one encoded line."""
        return self._decode_lines_bits(np.asarray(line_bits, dtype=np.uint8)[None, :])[0]

    # ------------------------------------------------------------------ #
    # WriteEncoder interface
    # ------------------------------------------------------------------ #
    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        raw_states = apply_mapping(DEFAULT_MAPPING, symbols)
        sizes = self.compressor.sizes_bits(lines)
        encodable = sizes <= MAX_COMPRESSED_BITS

        data_states = raw_states.copy()
        rows = np.nonzero(encodable)[0]
        if rows.size:
            line_bits = self._encode_lines_bits(LineBatch(lines.words[rows]))
            line_symbols = bits_to_symbols(line_bits)
            data_states[rows] = apply_mapping(DEFAULT_MAPPING, line_symbols)

        flag_states = np.where(encodable, FLAG_COMPRESSED_STATE, FLAG_RAW_STATE).astype(np.uint8)
        states = np.concatenate([data_states, flag_states[:, None]], axis=1).astype(np.uint8)

        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        # For encoded lines the expansion and parity bits are all metadata; the
        # paper attributes the entire encoded payload to the data component, so
        # only the flag cell is counted as auxiliary here.
        aux_mask[:, self.flag_cell_index] = True
        compressed = encodable.copy()
        return states, aux_mask, compressed, encodable

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        inverse = invert_mapping(DEFAULT_MAPPING)
        data_symbols = inverse[states[:, :SYMBOLS_PER_LINE]]
        flag = states[:, self.flag_cell_index]
        words = symbols_to_words(data_symbols.astype(np.uint8))
        decoded = words.copy()
        rows = np.nonzero(flag == FLAG_COMPRESSED_STATE)[0]
        if rows.size:
            line_bits = symbols_to_bits(data_symbols[rows])
            decoded[rows] = self._decode_lines_bits(line_bits)
        return LineBatch(decoded)
