"""COC+4cosets: Coverage-Oriented Compression combined with 4cosets encoding.

This baseline (Section VIII of the paper) compresses each line with the COC
bank of compressors and applies the 4cosets encoding at a fine granularity to
the compressed payload, storing the per-block candidate indices in the space
the compression freed:

* lines compressed to at most 448 bits are encoded at 16-bit granularity;
* lines compressed to at most 480 bits are encoded at 32-bit granularity;
* all other lines are written raw.

Because the COC members re-pack the line into a dense variable-length stream,
the bit positions of consecutive writes to the same address rarely coincide,
so differential write loses most of its benefit -- this is the behaviour that
makes COC+4cosets *increase* write energy on low-memory-intensity workloads
in Figure 8, and it emerges naturally here because the encoded layout is the
actual compressed stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compression.coc import COC_BUDGET_16BIT, COC_BUDGET_32BIT, COCCompressor
from ..compression.kernels import PackedBits
from ..core.cosets import DEFAULT_MAPPING, FOUR_COSETS, apply_mapping, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.line import LineBatch
from ..core.symbols import (
    BITS_PER_LINE,
    SYMBOLS_PER_LINE,
    bits_to_symbols,
    symbols_to_bits,
    symbols_to_words,
)
from .base import (
    WriteEncoder,
    block_energy_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)
from .wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE


@dataclass(frozen=True)
class _Layout:
    """Geometry of one COC+4cosets encoding mode."""

    budget_bits: int
    granularity_bits: int
    #: Symbol value stored in the mode-indicator cell (cell 255).
    mode_symbol: int

    @property
    def data_cells(self) -> int:
        """Cells holding the (coset-encoded) compressed payload."""
        return self.budget_bits // 2

    @property
    def block_cells(self) -> int:
        """Cells per coset-encoding block."""
        return self.granularity_bits // 2

    @property
    def num_blocks(self) -> int:
        """Number of coset-encoding blocks in the payload region."""
        return self.data_cells // self.block_cells

    @property
    def aux_bits(self) -> int:
        """Auxiliary bits (2-bit candidate index per block)."""
        return 2 * self.num_blocks

    @property
    def aux_cells(self) -> int:
        """Cells holding the candidate indices, right after the payload region."""
        return (self.aux_bits + 1) // 2


#: 16-bit-granularity mode (compressed size <= 448 bits).
LAYOUT_16 = _Layout(budget_bits=COC_BUDGET_16BIT, granularity_bits=16, mode_symbol=0)
#: 32-bit-granularity mode (compressed size <= 480 bits).
LAYOUT_32 = _Layout(budget_bits=COC_BUDGET_32BIT, granularity_bits=32, mode_symbol=2)


class COCFourCosetsEncoder(WriteEncoder):
    """COC compression followed by unrestricted 4cosets encoding."""

    name = "coc+4cosets"
    # Compression, layout classification and coset choice are all per line,
    # so tiled fused-metrics evaluation is bit-identical to a batch encode.
    supports_fused_metrics = True

    def __init__(self, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        super().__init__(energy_model)
        self.compressor = COCCompressor()
        self.candidates = FOUR_COSETS
        self.inverse_candidates = np.stack([invert_mapping(c) for c in self.candidates])

    @property
    def aux_cells(self) -> int:
        """One flag cell distinguishes compressed lines from raw lines."""
        return 1

    @property
    def flag_cell_index(self) -> int:
        """Index of the compressed/raw flag cell."""
        return SYMBOLS_PER_LINE

    #: Index of the cell that records which layout (16- or 32-bit) was used.
    MODE_CELL = SYMBOLS_PER_LINE - 1

    # ------------------------------------------------------------------ #
    # Encoding helpers
    # ------------------------------------------------------------------ #
    def _layout_for_size(self, size: int) -> Optional[_Layout]:
        if size <= LAYOUT_16.budget_bits:
            return LAYOUT_16
        if size <= LAYOUT_32.budget_bits:
            return LAYOUT_32
        return None

    def _packed_symbols(
        self, lines: LineBatch, member_sizes: np.ndarray
    ) -> np.ndarray:
        """Compressed payloads of a batch, zero-padded to 256 symbols each.

        ``member_sizes`` is the bank-size matrix the caller already computed
        while classifying the batch; passing it through means the bank is
        never re-evaluated per line (the pre-validated batch entry point).
        """
        packed = self.compressor.compress_batch(lines, member_sizes=member_sizes)
        bits = np.zeros((len(lines), BITS_PER_LINE), dtype=np.uint8)
        width = min(packed.bits.shape[1], BITS_PER_LINE)
        bits[:, :width] = packed.bits[:, :width]
        return bits_to_symbols(bits)

    def _encode_layout_group(
        self,
        indices: np.ndarray,
        payload_symbols: np.ndarray,
        stored_states: np.ndarray,
        layout: _Layout,
        data_states: np.ndarray,
        aux_mask: np.ndarray,
    ) -> None:
        """Coset-encode all lines of one layout group (vectorised)."""
        if indices.size == 0:
            return
        payload = payload_symbols[indices][:, : layout.data_cells]
        stored = stored_states[indices][:, : layout.data_cells]
        candidate_states = self.candidates[:, payload]
        costs = block_energy_costs(candidate_states, stored, self.energy_model, layout.block_cells)
        choice = costs.argmin(axis=0).astype(np.uint8)
        encoded = select_states_per_block(candidate_states, choice, layout.block_cells)
        choice_bits = np.zeros((indices.size, layout.aux_bits), dtype=np.uint8)
        choice_bits[:, 0::2] = choice & 1
        choice_bits[:, 1::2] = (choice >> 1) & 1
        aux_states = pack_bits_to_states(choice_bits)

        group_states = np.zeros((indices.size, SYMBOLS_PER_LINE), dtype=np.uint8)
        group_states[:, : layout.data_cells] = encoded
        aux_end = layout.data_cells + aux_states.shape[1]
        group_states[:, layout.data_cells:aux_end] = aux_states
        group_states[:, self.MODE_CELL] = DEFAULT_MAPPING[layout.mode_symbol]
        data_states[indices] = group_states
        aux_mask[indices, layout.data_cells:SYMBOLS_PER_LINE] = True

    # ------------------------------------------------------------------ #
    # WriteEncoder interface
    # ------------------------------------------------------------------ #
    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        raw_states = apply_mapping(DEFAULT_MAPPING, symbols)
        member_sizes = self.compressor.member_sizes(lines)
        sizes = self.compressor.sizes_from_members(member_sizes)
        mode16 = sizes <= LAYOUT_16.budget_bits
        mode32 = (~mode16) & (sizes <= LAYOUT_32.budget_bits)
        compressible = mode16 | mode32

        data_states = raw_states.copy()
        aux_mask = np.zeros((n, self.total_cells), dtype=bool)

        payload_symbols = np.zeros((n, SYMBOLS_PER_LINE), dtype=np.uint8)
        rows = np.nonzero(compressible)[0]
        if rows.size:
            payload_symbols[rows] = self._packed_symbols(
                LineBatch(lines.words[rows]), member_sizes[:, rows]
            )

        data_stored = stored_states[:, :SYMBOLS_PER_LINE]
        self._encode_layout_group(
            np.nonzero(mode16)[0], payload_symbols, data_stored, LAYOUT_16, data_states,
            aux_mask[:, :SYMBOLS_PER_LINE],
        )
        self._encode_layout_group(
            np.nonzero(mode32)[0], payload_symbols, data_stored, LAYOUT_32, data_states,
            aux_mask[:, :SYMBOLS_PER_LINE],
        )

        flag_states = np.where(compressible, FLAG_COMPRESSED_STATE, FLAG_RAW_STATE).astype(np.uint8)
        states = np.concatenate([data_states, flag_states[:, None]], axis=1).astype(np.uint8)
        aux_mask[:, self.flag_cell_index] = True
        return states, aux_mask, compressible, compressible.copy()

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        inverse_default = invert_mapping(DEFAULT_MAPPING)
        flag = states[:, self.flag_cell_index]
        words = symbols_to_words(inverse_default[states[:, :SYMBOLS_PER_LINE]].astype(np.uint8))
        compressed = np.nonzero(flag == FLAG_COMPRESSED_STATE)[0]
        if compressed.size:
            mode_symbols = inverse_default[states[compressed, self.MODE_CELL]]
            mode16 = mode_symbols == LAYOUT_16.mode_symbol
            for layout, rows in (
                (LAYOUT_16, compressed[mode16]),
                (LAYOUT_32, compressed[~mode16]),
            ):
                if rows.size:
                    words[rows] = self._decode_layout_group(
                        states[rows, :SYMBOLS_PER_LINE], layout
                    )
        return LineBatch(words)

    def _decode_layout_group(self, line_states: np.ndarray, layout: _Layout) -> np.ndarray:
        """Decode every line of one layout group at once (vectorised)."""
        n = line_states.shape[0]
        aux_states = line_states[:, layout.data_cells:layout.data_cells + layout.aux_cells]
        choice_bits = unpack_states_to_bits(aux_states, layout.aux_bits)
        choice = (choice_bits[:, 0::2] | (choice_bits[:, 1::2] << 1)).astype(np.uint8)
        per_cell_choice = np.repeat(choice, layout.block_cells, axis=1)
        inverse = self.inverse_candidates[per_cell_choice]
        payload_states = line_states[:, : layout.data_cells]
        payload_symbols = np.take_along_axis(
            inverse, payload_states[..., None].astype(np.intp), axis=-1
        )[..., 0]
        full_symbols = np.zeros((n, SYMBOLS_PER_LINE), dtype=np.uint8)
        full_symbols[:, : layout.data_cells] = payload_symbols
        bits = symbols_to_bits(full_symbols)
        packed = PackedBits(
            bits, np.full(n, BITS_PER_LINE, dtype=np.int64), self.compressor.name
        )
        return self.compressor.decompress_batch(packed)
