"""Unrestricted coset encodings: 6cosets, 4cosets and 3cosets.

An *unrestricted* coset encoding partitions the 512-bit line into data blocks
of a chosen granularity and, independently for every block, picks the coset
candidate (symbol-to-state mapping) that minimises the differential-write
energy of that block.  The candidate index of every block is recorded in
auxiliary cells appended to the line:

* **6cosets** [Wang et al., ICCD 2011] uses the six pair mappings of
  :data:`repro.core.cosets.SIX_COSETS` and stores the index in *two* auxiliary
  cells per block, using only the six cheapest two-cell state combinations.
* **4cosets** (the paper's Table I candidates) and **3cosets** (candidates
  C1-C3) store the index in a *single* auxiliary cell per block, candidate
  ``Ci`` being flagged by state ``Si`` so that the most frequent candidates
  keep the auxiliary cell in a low-energy state.

These encoders reproduce Figures 1, 2, 3 and 5 of the paper and serve as the
building blocks of the WLC-based schemes.
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Tuple

import numpy as np

from ..core.cosets import FOUR_COSETS, SIX_COSETS, THREE_COSETS, invert_mapping
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.errors import ConfigurationError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, SYMBOLS_PER_LINE
from .base import (
    WriteEncoder,
    block_energy_costs,
    select_states_per_block,
)


class AuxCodec:
    """Translate per-block candidate indices to auxiliary cell states and back."""

    #: Number of auxiliary cells per data block.
    cells_per_block: int = 1

    def encode(self, choice: np.ndarray) -> np.ndarray:
        """Auxiliary states for a ``(n, blocks)`` array of candidate indices."""
        raise NotImplementedError

    def decode(self, aux_states: np.ndarray, blocks: int) -> np.ndarray:
        """Candidate indices recovered from auxiliary states."""
        raise NotImplementedError


class SingleCellAuxCodec(AuxCodec):
    """Candidate index ``i`` is stored as state ``Si`` in one auxiliary cell.

    This matches the paper's 4cosets/3cosets auxiliary encoding: candidates C1
    and C2, by far the most frequent on biased data, keep the auxiliary cell in
    the two low-energy states.
    """

    cells_per_block = 1

    def __init__(self, num_candidates: int):
        if not 1 <= num_candidates <= 4:
            raise ConfigurationError("single-cell aux codec supports at most 4 candidates")
        self.num_candidates = num_candidates

    def encode(self, choice: np.ndarray) -> np.ndarray:
        return np.asarray(choice, dtype=np.uint8)

    def decode(self, aux_states: np.ndarray, blocks: int) -> np.ndarray:
        choice = np.asarray(aux_states, dtype=np.uint8)[:, :blocks]
        return np.minimum(choice, self.num_candidates - 1)


class PairCellAuxCodec(AuxCodec):
    """Candidate index stored as one of the cheapest two-cell state combinations.

    The paper's 6cosets evaluation stores the chosen candidate in two
    auxiliary cells and uses only the six state combinations with the lowest
    total write energy; this codec generalises that to any candidate count up
    to 16.
    """

    cells_per_block = 2

    def __init__(self, num_candidates: int, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL):
        if not 1 <= num_candidates <= 16:
            raise ConfigurationError("pair-cell aux codec supports at most 16 candidates")
        self.num_candidates = num_candidates
        weights = energy_model.write_energy_per_state
        combos = sorted(
            product(range(4), repeat=2),
            key=lambda pair: (weights[pair[0]] + weights[pair[1]], pair),
        )
        self.combos = np.asarray(combos[:num_candidates], dtype=np.uint8)
        self._lookup = {tuple(combo): index for index, combo in enumerate(self.combos.tolist())}

    def encode(self, choice: np.ndarray) -> np.ndarray:
        choice = np.asarray(choice)
        pairs = self.combos[choice]  # (n, blocks, 2)
        return pairs.reshape(choice.shape[0], choice.shape[1] * 2)

    def decode(self, aux_states: np.ndarray, blocks: int) -> np.ndarray:
        aux_states = np.asarray(aux_states, dtype=np.uint8)[:, : blocks * 2]
        pairs = aux_states.reshape(aux_states.shape[0], blocks, 2)
        choice = np.zeros((aux_states.shape[0], blocks), dtype=np.uint8)
        for n in range(pairs.shape[0]):
            for b in range(blocks):
                choice[n, b] = self._lookup.get(tuple(pairs[n, b].tolist()), 0)
        return choice


class NCosetsEncoder(WriteEncoder):
    """Generic unrestricted coset encoder over a fixed candidate family."""

    # Every block's candidate choice depends only on its own line, so tiled
    # (fused encode+metrics) evaluation is bit-identical to a batch encode.
    supports_fused_metrics = True

    def __init__(
        self,
        candidates: np.ndarray,
        granularity_bits: int = 512,
        name: Optional[str] = None,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        super().__init__(energy_model)
        candidates = np.asarray(candidates, dtype=np.uint8)
        if candidates.ndim != 2 or candidates.shape[1] != 4:
            raise ConfigurationError("candidates must have shape (k, 4)")
        if granularity_bits % 2 or BITS_PER_LINE % granularity_bits:
            raise ConfigurationError("granularity_bits must evenly divide the 512-bit line")
        self.candidates = candidates
        self.inverse_candidates = np.stack([invert_mapping(c) for c in candidates])
        self.granularity_bits = granularity_bits
        self.block_cells = granularity_bits // 2
        self.num_blocks = SYMBOLS_PER_LINE // self.block_cells
        if candidates.shape[0] <= 4:
            self.aux_codec: AuxCodec = SingleCellAuxCodec(candidates.shape[0])
        else:
            self.aux_codec = PairCellAuxCodec(candidates.shape[0], energy_model)
        self.name = name or f"{candidates.shape[0]}cosets-{granularity_bits}"

    @property
    def aux_cells(self) -> int:
        """Auxiliary cells appended to the line (per-block candidate indices)."""
        return self.num_blocks * self.aux_codec.cells_per_block

    def _encode_against_states(
        self, lines: LineBatch, stored_states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(lines)
        symbols = lines.symbols()
        data_stored = stored_states[:, :SYMBOLS_PER_LINE]
        candidate_states = self.candidates[:, symbols]  # (k, n, cells)
        costs = block_energy_costs(candidate_states, data_stored, self.energy_model, self.block_cells)
        choice = costs.argmin(axis=0).astype(np.uint8)  # (n, blocks)
        data_states = select_states_per_block(candidate_states, choice, self.block_cells)
        aux_states = self.aux_codec.encode(choice)
        states = np.concatenate([data_states, aux_states], axis=1).astype(np.uint8)
        aux_mask = np.zeros((n, self.total_cells), dtype=bool)
        aux_mask[:, SYMBOLS_PER_LINE:] = True
        compressed = np.zeros(n, dtype=bool)
        encoded = np.ones(n, dtype=bool)
        return states, aux_mask, compressed, encoded

    def decode_states(self, states: np.ndarray) -> LineBatch:
        states = np.asarray(states, dtype=np.uint8)
        data_states = states[:, :SYMBOLS_PER_LINE]
        aux_states = states[:, SYMBOLS_PER_LINE:]
        choice = self.aux_codec.decode(aux_states, self.num_blocks)
        per_cell_choice = np.repeat(choice, self.block_cells, axis=1)
        inverse = self.inverse_candidates[per_cell_choice]  # (n, cells, 4)
        symbols = np.take_along_axis(inverse, data_states[..., None].astype(np.intp), axis=-1)[..., 0]
        return LineBatch.from_symbols(symbols.astype(np.uint8))


def make_six_cosets(granularity_bits: int = 512, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> NCosetsEncoder:
    """The prior-work 6cosets scheme at the requested granularity."""
    return NCosetsEncoder(
        SIX_COSETS, granularity_bits, name=f"6cosets-{granularity_bits}", energy_model=energy_model
    )


def make_four_cosets(granularity_bits: int = 512, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> NCosetsEncoder:
    """The proposed 4cosets scheme (Table I candidates) at the requested granularity."""
    return NCosetsEncoder(
        FOUR_COSETS, granularity_bits, name=f"4cosets-{granularity_bits}", energy_model=energy_model
    )


def make_three_cosets(granularity_bits: int = 512, energy_model: EnergyModel = DEFAULT_ENERGY_MODEL) -> NCosetsEncoder:
    """The unrestricted 3cosets scheme (candidates C1-C3) at the requested granularity."""
    return NCosetsEncoder(
        THREE_COSETS, granularity_bits, name=f"3cosets-{granularity_bits}", energy_model=energy_model
    )
