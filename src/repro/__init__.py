"""repro: reproduction of "Enabling Fine-Grain Restricted Coset Coding Through
Word-Level Compression for PCM" (HPCA 2018).

The package implements the paper's WLCRC write-encoding architecture for
multi-level-cell phase change memory together with every substrate and
baseline needed to reproduce its evaluation:

* :mod:`repro.core` -- memory-line / symbol data model, MLC PCM energy and
  write-disturbance models, coset candidates, metrics.
* :mod:`repro.compression` -- Word-Level Compression (WLC), FPC, BDI and
  Coverage-Oriented Compression (COC) substrates.
* :mod:`repro.ecc` -- GF(2^m) arithmetic and the BCH code used by DIN.
* :mod:`repro.coding` -- the write-encoding schemes: differential-write
  baseline, FNW, FlipMin, 6cosets, 4cosets, 3cosets, restricted cosets, DIN,
  COC+4cosets, WLC+cosets and WLCRC.
* :mod:`repro.pcm` / :mod:`repro.memory` / :mod:`repro.cache` -- the PCM
  device, memory-controller and cache-hierarchy substrates.
* :mod:`repro.workloads` -- synthetic SPEC2006/PARSEC-like write traces.
* :mod:`repro.evaluation` -- the trace-driven evaluation harness and the
  per-figure experiment drivers.
* :mod:`repro.hardware` -- analytical hardware-overhead model of the WLCRC
  encoder/decoder pipeline.

Quickstart
----------

>>> from repro import make_scheme, evaluate_trace
>>> from repro.workloads import generate_benchmark_trace
>>> trace = generate_benchmark_trace("gcc", length=2000, seed=1)
>>> wlcrc = make_scheme("wlcrc-16")
>>> metrics = evaluate_trace(wlcrc, trace)
>>> metrics.avg_energy_pj > 0
True
"""

from .core import (
    DisturbanceModel,
    EnergyModel,
    EvaluationConfig,
    LineBatch,
    SystemConfig,
    WriteMetrics,
)
from .coding import available_schemes, make_scheme
from .evaluation import evaluate_trace

__version__ = "1.0.0"

__all__ = [
    "DisturbanceModel",
    "EnergyModel",
    "EvaluationConfig",
    "LineBatch",
    "SystemConfig",
    "WriteMetrics",
    "available_schemes",
    "evaluate_trace",
    "make_scheme",
    "__version__",
]
