"""Error-correcting-code substrate: GF(2^m) arithmetic and the BCH code used by DIN."""

from .bch import BCHCode, DecodeResult
from .gf import DEFAULT_PRIMITIVE_POLYS, GaloisField

__all__ = ["BCHCode", "DecodeResult", "DEFAULT_PRIMITIVE_POLYS", "GaloisField"]
