"""Binary BCH code used by the DIN baseline and the verify-and-restore model.

DIN [Jiang et al., DSN 2014] appends a 20-bit BCH code capable of correcting
two write-disturbance errors to each compressed-and-expanded memory line.  A
2-error-correcting binary BCH code over GF(2^10) has exactly 20 parity bits
(two degree-10 minimal polynomials), which is what this module implements:

* systematic encoding (data bits followed by parity bits);
* syndrome computation;
* decoding of up to two bit errors with Peterson's direct solution and a
  Chien search over the received positions.

Bit order convention: ``codeword[i]`` is the coefficient of ``x^i``; data bits
occupy the high-degree positions ``r .. r+k-1`` and parity the low positions
``0 .. r-1`` (classic systematic form ``c(x) = d(x)*x^r + rem``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .gf import GaloisField


def _poly_degree(mask: int) -> int:
    return mask.bit_length() - 1


def _gf2_poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of binary polynomial division (polynomials as bit masks)."""
    divisor_degree = _poly_degree(divisor)
    remainder = dividend
    while remainder.bit_length() - 1 >= divisor_degree and remainder:
        shift = (remainder.bit_length() - 1) - divisor_degree
        remainder ^= divisor << shift
    return remainder


def _gf2_poly_lcm(a: int, b: int) -> int:
    """Least common multiple of two binary polynomials."""
    gcd = _gf2_poly_gcd(a, b)
    quotient, _ = _gf2_poly_divmod(a, gcd)
    return _gf2_poly_multiply(quotient, b)


def _gf2_poly_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, _gf2_poly_mod(a, b)
    return a


def _gf2_poly_multiply(a: int, b: int) -> int:
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def _gf2_poly_divmod(dividend: int, divisor: int) -> Tuple[int, int]:
    quotient = 0
    remainder = dividend
    divisor_degree = _poly_degree(divisor)
    while remainder and remainder.bit_length() - 1 >= divisor_degree:
        shift = (remainder.bit_length() - 1) - divisor_degree
        quotient |= 1 << shift
        remainder ^= divisor << shift
    return quotient, remainder


@dataclass
class DecodeResult:
    """Outcome of a BCH decode attempt."""

    corrected: np.ndarray
    error_positions: Tuple[int, ...]
    success: bool


class BCHCode:
    """A binary ``t``-error-correcting BCH code over GF(2^m).

    Parameters
    ----------
    m:
        Field degree; the natural code length is ``2^m - 1``.
    t:
        Number of correctable bit errors.
    data_bits:
        Number of data bits per codeword (the code is shortened to
        ``data_bits + parity_bits``).
    """

    def __init__(self, m: int = 10, t: int = 2, data_bits: int = 492):
        self.field = GaloisField(m)
        self.m = m
        self.t = t
        generator = 1
        for i in range(1, 2 * t, 2):
            generator = _gf2_poly_lcm(generator, self.field.minimal_polynomial(i))
        self.generator_poly = generator
        self.parity_bits = _poly_degree(generator)
        self.natural_length = self.field.order
        if data_bits + self.parity_bits > self.natural_length:
            raise ValueError(
                f"data_bits too large: {data_bits} + {self.parity_bits} parity bits "
                f"exceeds the natural length {self.natural_length}"
            )
        self.data_bits = data_bits
        # Shifted-remainder table: row i is x^(i + r) mod g(x) as LSB-first
        # bits.  Systematic parity is linear over GF(2), so the parity of
        # d(x)*x^r is the XOR of these rows over the set data bits -- the
        # vectorised form computed by parity_batch as a matmul mod 2.
        self._remainder_table = np.array(
            [
                [
                    (_gf2_poly_mod(1 << (i + self.parity_bits), self.generator_poly) >> j) & 1
                    for j in range(self.parity_bits)
                ]
                for i in range(self.data_bits)
            ],
            dtype=np.uint8,
        )

    @property
    def codeword_bits(self) -> int:
        """Total codeword length (data + parity) in bits."""
        return self.data_bits + self.parity_bits

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def parity(self, data: Sequence[int]) -> np.ndarray:
        """Parity bits of a data-bit sequence (LSB-first, length ``data_bits``)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 1 or data.shape[0] != self.data_bits:
            raise ValueError(f"expected {self.data_bits} data bits, got {data.shape}")
        return self.parity_batch(data.reshape(1, -1))[0]

    def parity_batch(self, data: np.ndarray) -> np.ndarray:
        """Parity bits of a whole ``(n, data_bits)`` bit matrix at once.

        One GF(2) reduction against the precomputed shifted-remainder table
        replaces the per-line carry chain of long division -- this is what
        keeps the DIN encode path free of per-line Python loops (see
        :func:`repro.compression.kernels.xor_reduce`).
        """
        from ..compression.backend import get_backend
        from ..compression.kernels import xor_reduce

        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != self.data_bits:
            raise ValueError(
                f"expected (n, {self.data_bits}) data bits, got {data.shape}"
            )
        backend = get_backend()
        return backend.to_host(
            xor_reduce(backend.to_device(data), self._remainder_table, backend=backend)
        )

    def encode(self, data: Sequence[int]) -> np.ndarray:
        """Systematic codeword: parity bits (positions ``0..r-1``) then data bits."""
        data = np.asarray(data, dtype=np.uint8)
        return np.concatenate([self.parity(data), data])

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def syndromes(self, received: Sequence[int]) -> List[int]:
        """The ``2t`` syndromes of a received word (polynomial evaluated at alpha^i)."""
        received = np.asarray(received, dtype=np.uint8)
        positions = np.nonzero(received)[0]
        result = []
        for i in range(1, 2 * self.t + 1):
            value = 0
            for position in positions:
                value ^= self.field.alpha_power(int(position) * i)
            result.append(value)
        return result

    def decode(self, received: Sequence[int]) -> DecodeResult:
        """Correct up to ``t`` bit errors (t = 2 supported) in a received word."""
        received = np.asarray(received, dtype=np.uint8).copy()
        if received.shape[0] != self.codeword_bits:
            raise ValueError(f"expected {self.codeword_bits} bits, got {received.shape[0]}")
        syndromes = self.syndromes(received)
        if all(s == 0 for s in syndromes):
            return DecodeResult(corrected=received, error_positions=(), success=True)
        if self.t != 2:
            raise NotImplementedError("decoding is implemented for t=2 codes")
        gf = self.field
        s1, _, s3, _ = syndromes
        if s1 != 0 and s3 == gf.power(s1, 3):
            position = gf.log(s1)
            if position >= self.codeword_bits:
                return DecodeResult(corrected=received, error_positions=(), success=False)
            received[position] ^= 1
            return DecodeResult(corrected=received, error_positions=(position,), success=True)
        if s1 == 0:
            # Two errors cannot produce S1 = 0 with S3 != 0 for this code; flag failure.
            return DecodeResult(corrected=received, error_positions=(), success=False)
        # Two-error locator polynomial: x^2 + s1*x + (s3 + s1^3) / s1.
        sigma2 = gf.divide(gf.add(s3, gf.power(s1, 3)), s1)
        roots = []
        for position in range(self.codeword_bits):
            x = gf.alpha_power(position)
            value = gf.add(gf.add(gf.multiply(x, x), gf.multiply(s1, x)), sigma2)
            if value == 0:
                roots.append(position)
            if len(roots) == 2:
                break
        if len(roots) != 2:
            return DecodeResult(corrected=received, error_positions=(), success=False)
        for position in roots:
            received[position] ^= 1
        if any(s != 0 for s in self.syndromes(received)):
            return DecodeResult(corrected=received, error_positions=tuple(roots), success=False)
        return DecodeResult(corrected=received, error_positions=tuple(roots), success=True)
