"""Finite-field arithmetic over GF(2^m) used by the BCH code of the DIN baseline.

The field is represented with exponential/logarithm tables built from a
primitive polynomial, which makes multiplication, division and inversion O(1)
table look-ups.  Elements are plain Python integers in ``[0, 2^m)``.
"""

from __future__ import annotations
from typing import Dict, List

#: Default primitive polynomials per field degree (x^m term included).
DEFAULT_PRIMITIVE_POLYS: Dict[int, int] = {
    3: 0b1011,            # x^3 + x + 1
    4: 0b10011,           # x^4 + x + 1
    5: 0b100101,          # x^5 + x^2 + 1
    6: 0b1000011,         # x^6 + x + 1
    8: 0b100011101,       # x^8 + x^4 + x^3 + x^2 + 1
    10: 0b10000001001,    # x^10 + x^3 + 1
}


class GaloisField:
    """GF(2^m) with table-driven arithmetic.

    Parameters
    ----------
    m:
        Field degree; the field has ``2^m`` elements.
    primitive_poly:
        Primitive polynomial as an integer bit mask (bit ``i`` is the
        coefficient of ``x^i``).  When omitted, a standard polynomial for the
        requested degree is used.
    """

    def __init__(self, m: int, primitive_poly: int | None = None):
        if m < 2:
            raise ValueError("field degree must be at least 2")
        if primitive_poly is None:
            if m not in DEFAULT_PRIMITIVE_POLYS:
                raise ValueError(f"no default primitive polynomial for m={m}")
            primitive_poly = DEFAULT_PRIMITIVE_POLYS[m]
        self.m = m
        self.primitive_poly = primitive_poly
        self.size = 1 << m
        self.order = self.size - 1
        self._exp: List[int] = [0] * (2 * self.order)
        self._log: List[int] = [0] * self.size
        value = 1
        for power in range(self.order):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.size:
                value ^= primitive_poly
        if value != 1:
            raise ValueError("polynomial is not primitive for this degree")
        for power in range(self.order, 2 * self.order):
            self._exp[power] = self._exp[power - self.order]

    # ------------------------------------------------------------------ #
    # Element arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a: int, b: int) -> int:
        """Addition (and subtraction) in characteristic 2 is XOR."""
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` for zero."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.order - self._log[a]]

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, exponent: int) -> int:
        """Raise an element to an integer power."""
        if a == 0:
            return 0 if exponent > 0 else 1
        return self._exp[(self._log[a] * exponent) % self.order]

    def alpha_power(self, exponent: int) -> int:
        """The element alpha^exponent, where alpha is the primitive element."""
        return self._exp[exponent % self.order]

    def log(self, a: int) -> int:
        """Discrete logarithm base alpha."""
        if a == 0:
            raise ValueError("zero has no discrete logarithm")
        return self._log[a]

    # ------------------------------------------------------------------ #
    # Polynomials over the field (coefficient lists, index = degree)
    # ------------------------------------------------------------------ #
    def poly_multiply(self, p: List[int], q: List[int]) -> List[int]:
        """Multiply two polynomials with coefficients in GF(2^m)."""
        result = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b == 0:
                    continue
                result[i + j] ^= self.multiply(a, b)
        return result

    def poly_evaluate(self, p: List[int], x: int) -> int:
        """Evaluate a polynomial at ``x`` (Horner's method)."""
        result = 0
        for coefficient in reversed(p):
            result = self.multiply(result, x) ^ coefficient
        return result

    def minimal_polynomial(self, element_log: int) -> int:
        """Minimal polynomial over GF(2) of alpha^element_log.

        Returns the polynomial as an integer bit mask over GF(2) (bit ``i`` is
        the coefficient of ``x^i``).
        """
        coset = set()
        current = element_log % self.order
        while current not in coset:
            coset.add(current)
            current = (current * 2) % self.order
        poly = [1]
        for power in sorted(coset):
            poly = self.poly_multiply(poly, [self.alpha_power(power), 1])
        mask = 0
        for degree, coefficient in enumerate(poly):
            if coefficient not in (0, 1):
                raise ArithmeticError("minimal polynomial must have binary coefficients")
            if coefficient:
                mask |= 1 << degree
        return mask
