"""Batch container for 512-bit PCM memory lines.

:class:`LineBatch` wraps a ``(n, 8)`` ``uint64`` array (eight 64-bit words per
line) and provides the conversions the rest of the library needs: symbol view,
byte view, bit view, per-word access, and convenience constructors.  All
encoders and the evaluation harness operate on :class:`LineBatch` pairs
``(old, new)`` representing differential-write transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from . import symbols as sym


@dataclass(frozen=True)
class LineBatch:
    """A batch of 512-bit memory lines.

    Parameters
    ----------
    words:
        Array of shape ``(n, 8)`` and dtype ``uint64``.  Word 0 of each line is
        the least significant 64 bits.
    """

    words: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.words, dtype=np.uint64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != sym.WORDS_PER_LINE:
            raise ValueError(
                f"LineBatch expects shape (n, {sym.WORDS_PER_LINE}); got {arr.shape}"
            )
        object.__setattr__(self, "words", arr)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, count: int) -> "LineBatch":
        """A batch of ``count`` all-zero lines."""
        return cls(np.zeros((count, sym.WORDS_PER_LINE), dtype=np.uint64))

    @classmethod
    def random(cls, count: int, rng: Optional[np.random.Generator] = None) -> "LineBatch":
        """A batch of ``count`` uniformly random lines."""
        rng = rng or np.random.default_rng()
        words = rng.integers(0, 2**64, size=(count, sym.WORDS_PER_LINE), dtype=np.uint64)
        return cls(words)

    @classmethod
    def from_symbols(cls, symbols: np.ndarray) -> "LineBatch":
        """Build a batch from an ``(n, 256)`` array of 2-bit symbols."""
        return cls(sym.symbols_to_words(symbols))

    @classmethod
    def from_bytes(cls, data: np.ndarray) -> "LineBatch":
        """Build a batch from an ``(n, 64)`` array of bytes."""
        return cls(sym.bytes_to_words(data))

    @classmethod
    def from_ints(cls, values: Iterable[int]) -> "LineBatch":
        """Build a batch from an iterable of 512-bit Python integers."""
        rows = [sym.line_from_int(v) for v in values]
        if not rows:
            return cls.zeros(0)
        return cls(np.stack(rows))

    @classmethod
    def concatenate(cls, batches: Sequence["LineBatch"]) -> "LineBatch":
        """Concatenate several batches into one."""
        if not batches:
            return cls.zeros(0)
        return cls(np.concatenate([b.words for b in batches], axis=0))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def symbols(self) -> np.ndarray:
        """The ``(n, 256)`` symbol view of the batch."""
        return sym.words_to_symbols(self.words)

    def bytes(self) -> np.ndarray:
        """The ``(n, 64)`` byte view of the batch."""
        return sym.words_to_bytes(self.words)

    def bits(self) -> np.ndarray:
        """The ``(n, 512)`` bit view of the batch."""
        return sym.words_to_bits(self.words)

    def to_ints(self) -> list:
        """The batch as a list of 512-bit Python integers."""
        return [sym.line_to_int(self.words[i]) for i in range(len(self))]

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.words.shape[0]

    def __getitem__(self, index: Union[int, slice, np.ndarray]) -> "LineBatch":
        selected = self.words[index]
        if selected.ndim == 1:
            selected = selected.reshape(1, -1)
        return LineBatch(selected)

    def __iter__(self) -> Iterator["LineBatch"]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineBatch):
            return NotImplemented
        return self.words.shape == other.words.shape and bool(
            np.array_equal(self.words, other.words)
        )

    def equals_elementwise(self, other: "LineBatch") -> np.ndarray:
        """Per-line equality against another batch of the same length."""
        if len(self) != len(other):
            raise ValueError("batches must have the same length")
        return np.all(self.words == other.words, axis=1)

    def chunks(self, chunk_size: int) -> Iterator["LineBatch"]:
        """Iterate over the batch in chunks of at most ``chunk_size`` lines."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]
