"""Coset candidates: symbol-to-state mappings for MLC PCM write encoding.

A *coset candidate* is a bijective mapping of the four 2-bit symbols onto the
four cell states.  Writing a data block under candidate ``C`` means programming
each cell to ``C[symbol]`` instead of the default mapping, which lets the
encoder steer frequently occurring symbols toward the low-energy states.

This module defines:

* the default mapping ``C1`` and the paper's hand-picked candidates ``C2``,
  ``C3`` and ``C4`` (Table I);
* the six candidates of the prior-work *6cosets* scheme [Wang et al., ICCD'11],
  which map every unordered pair of symbols onto the two low-energy states;
* the sixteen pseudo-random 512-bit coset vectors used by *FlipMin*
  [Jacobvitz et al., HPCA'13].

Mappings are represented as ``numpy`` arrays of length 4 where entry ``s`` is
the state assigned to symbol ``s``.  ``apply_mapping`` / ``invert_mapping``
convert between symbols and states in either direction.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

import numpy as np

from .symbols import BITS_PER_LINE

#: Default mapping (Table I, candidate C1): 00->S1, 01->S4, 10->S2, 11->S3.
C1 = np.array([0, 3, 1, 2], dtype=np.uint8)
#: Table I candidate C2: 00->S2, 01->S4, 10->S3, 11->S1.
C2 = np.array([1, 3, 2, 0], dtype=np.uint8)
#: Table I candidate C3: 00->S3, 01->S2, 10->S4, 11->S1.
C3 = np.array([2, 1, 3, 0], dtype=np.uint8)
#: Table I candidate C4: 00->S2, 01->S3, 10->S4, 11->S1.
C4 = np.array([1, 2, 3, 0], dtype=np.uint8)

#: The four candidates of the proposed *4cosets* encoding (Table I order).
FOUR_COSETS = np.stack([C1, C2, C3, C4])
#: The first three candidates, used by *3cosets* and the restricted coset coding.
THREE_COSETS = np.stack([C1, C2, C3])
#: The default (identity) mapping alone; used by the differential-write baseline.
DEFAULT_MAPPING = C1

#: The two restricted coset groups of Section V: group 0 may pick C1 or C2 for
#: each data block, group 1 may pick C1 or C3.
RESTRICTED_GROUPS = (np.stack([C1, C2]), np.stack([C1, C3]))


def is_valid_mapping(mapping: np.ndarray) -> bool:
    """Return ``True`` when ``mapping`` is a bijection of symbols onto states."""
    arr = np.asarray(mapping)
    return arr.shape == (4,) and sorted(int(x) for x in arr) == [0, 1, 2, 3]


def apply_mapping(mapping: np.ndarray, symbols: np.ndarray) -> np.ndarray:
    """Map symbol values to cell states under a coset candidate."""
    mapping = np.asarray(mapping, dtype=np.uint8)
    if not is_valid_mapping(mapping):
        raise ValueError(f"invalid coset mapping: {mapping!r}")
    return mapping[np.asarray(symbols, dtype=np.uint8)]


def invert_mapping(mapping: np.ndarray) -> np.ndarray:
    """Return the inverse (state-to-symbol) mapping of a coset candidate."""
    mapping = np.asarray(mapping, dtype=np.uint8)
    if not is_valid_mapping(mapping):
        raise ValueError(f"invalid coset mapping: {mapping!r}")
    inverse = np.empty(4, dtype=np.uint8)
    inverse[mapping] = np.arange(4, dtype=np.uint8)
    return inverse


def states_to_symbols(mapping: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Recover the symbols that were encoded as ``states`` under ``mapping``."""
    return invert_mapping(mapping)[np.asarray(states, dtype=np.uint8)]


def six_cosets() -> np.ndarray:
    """Build the six candidates of the prior-work *6cosets* scheme.

    For every unordered pair ``{a, b}`` of symbols, one candidate maps ``a`` to
    the cheapest state S1 and ``b`` to S2, while the remaining two symbols are
    assigned (in ascending order) to S3 and S4.  The encoder evaluates all six
    candidates per block and keeps the cheapest, which realises the original
    scheme's goal of mapping the two most frequent symbols of a block to the
    two low-energy states.
    """
    candidates: List[np.ndarray] = []
    for a, b in combinations(range(4), 2):
        mapping = np.empty(4, dtype=np.uint8)
        mapping[a] = 0
        mapping[b] = 1
        rest = [s for s in range(4) if s not in (a, b)]
        mapping[rest[0]] = 2
        mapping[rest[1]] = 3
        candidates.append(mapping)
    return np.stack(candidates)


#: The six candidates of the prior-work *6cosets* scheme, in a fixed order.
SIX_COSETS = six_cosets()


def flipmin_coset_vectors(
    num_cosets: int = 16,
    line_bits: int = BITS_PER_LINE,
    seed: int = 0x5EED,
) -> np.ndarray:
    """Generate the FlipMin coset vectors as 512-bit binary masks.

    FlipMin XORs the data line with one of ``num_cosets`` binary vectors and
    stores the index of the vector that minimises the write cost.  The original
    work derives the vectors from the dual code of a (72, 64) Hamming
    generator matrix, which makes them essentially random binary vectors; here
    they are generated from a fixed-seed PRNG so results are reproducible.
    Vector 0 is the all-zero vector so that the scheme can always fall back to
    writing the data unchanged.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_cosets, line_bits // 64)`` and dtype ``uint64``.
    """
    if num_cosets < 1:
        raise ValueError("num_cosets must be positive")
    if line_bits % 64 != 0:
        raise ValueError("line_bits must be a multiple of 64")
    words = line_bits // 64
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2**64, size=(num_cosets, words), dtype=np.uint64)
    vectors[0] = 0
    return vectors


def candidate_names(count: int) -> List[str]:
    """Human-readable names ``C1..Cn`` for a family of coset candidates."""
    return [f"C{i + 1}" for i in range(count)]
