"""Shared configuration objects for experiments and simulations.

The paper's system configuration (Table II) is captured by
:class:`SystemConfig`; the per-experiment evaluation knobs (trace length,
chunking, disturbance counting mode, random seed) live in
:class:`EvaluationConfig`.  Both are plain frozen dataclasses so they can be
passed around, hashed, and printed in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .disturbance import DisturbanceModel, DEFAULT_DISTURBANCE_MODEL
from .energy import EnergyModel, DEFAULT_ENERGY_MODEL

#: Data-block granularities (in bits) evaluated throughout the paper.
GRANULARITIES_FULL = (8, 16, 32, 64, 128, 256, 512)
#: Granularities at which WLC-based encodings are defined (Section VI).
GRANULARITIES_WLC = (8, 16, 32, 64)


@dataclass(frozen=True)
class PCMOrganization:
    """Physical organisation of the PCM main memory (Table II)."""

    capacity_gib: int = 32
    channels: int = 2
    dimms_per_channel: int = 2
    banks_per_dimm: int = 16
    line_bytes: int = 64
    write_queue_entries: int = 32
    write_queue_high_watermark: float = 0.8

    @property
    def total_banks(self) -> int:
        """Total number of banks across all channels and DIMMs."""
        return self.channels * self.dimms_per_channel * self.banks_per_dimm

    @property
    def lines_per_bank(self) -> int:
        """Number of 64-byte lines stored in each bank."""
        total_lines = (self.capacity_gib * (1 << 30)) // self.line_bytes
        return total_lines // self.total_banks


@dataclass(frozen=True)
class CPUConfig:
    """Processor-side configuration used for trace generation (Table II)."""

    cores: int = 8
    frequency_ghz: float = 4.0
    l2_size_kib: int = 2048
    l2_ways: int = 8
    l2_line_bytes: int = 64


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration: CPU, PCM organisation, and cell models."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    pcm: PCMOrganization = field(default_factory=PCMOrganization)
    energy: EnergyModel = field(default_factory=lambda: DEFAULT_ENERGY_MODEL)
    disturbance: DisturbanceModel = field(default_factory=lambda: DEFAULT_DISTURBANCE_MODEL)


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the trace-driven evaluation harness."""

    #: Number of write requests generated per benchmark trace.
    trace_length: int = 20_000
    #: Number of lines processed per vectorised chunk.
    chunk_size: int = 2_048
    #: Seed of the master PRNG used for trace generation.
    seed: int = 2018
    #: When ``True`` disturbance errors are Monte-Carlo sampled instead of
    #: using the deterministic expected-value count.
    sample_disturbance: bool = False
    #: Array backend the compression kernels run on (``"numpy"``, ``"numba"``,
    #: ``"cupy"``); ``None`` keeps whatever backend is already active (the
    #: ``REPRO_ARRAY_BACKEND`` env var or the numpy reference).  Results are
    #: bit-identical for every backend -- this knob only moves throughput.
    array_backend: Optional[str] = None
    #: Coalesce streaming chunks into encoder batches of at least this many
    #: lines (the *super-batch* accumulator) before calling ``encode_batch``.
    #: Metrics are still computed per original ``chunk_size`` window with the
    #: per-chunk RNG streams and merged in chunk order, so results stay
    #: bit-identical to the per-chunk path; only the kernel batch size -- and
    #: hence compiled/GPU backend utilisation -- changes.  ``None`` disables
    #: coalescing (one ``encode_batch`` call per chunk, the historical
    #: behaviour).
    superbatch_size: Optional[int] = None
    #: Tile size (in lines) of the fused encode+metrics path.  When a chunk
    #: group is larger than this, encoders that opt in
    #: (``WriteEncoder.supports_fused_metrics``) are driven tile by tile --
    #: each tile is encoded, its per-chunk-window metrics accumulated, and
    #: its states discarded before the next tile -- so peak memory is bounded
    #: by the tile instead of the super-batch while results stay bit-identical
    #: (tiles align to chunk windows and encoding is per line).  ``None`` or
    #: a non-positive value disables tiling (the materialising reference
    #: path).  The value is rounded up to whole chunks.
    fused_tile_lines: Optional[int] = 8192

    def with_trace_length(self, trace_length: int) -> "EvaluationConfig":
        """Copy of this config with a different trace length."""
        return replace(self, trace_length=trace_length)


#: Default system configuration matching Table II of the paper.
DEFAULT_SYSTEM_CONFIG = SystemConfig()
#: Default evaluation configuration used by examples and benchmarks.
DEFAULT_EVALUATION_CONFIG = EvaluationConfig()
