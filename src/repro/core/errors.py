"""Exception hierarchy of the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a scheme or model is configured with invalid parameters."""


class EncodingError(ReproError):
    """Raised when an encoder cannot encode or decode a memory line."""


class CompressionError(ReproError):
    """Raised when a compressor produces or receives an invalid stream."""


class TraceError(ReproError):
    """Raised for malformed write traces or trace files."""


class SimulationError(ReproError):
    """Raised by the PCM device / memory-controller simulation layer."""


class BenchError(ReproError):
    """Raised by the benchmark-orchestration subsystem (:mod:`repro.bench`)."""
