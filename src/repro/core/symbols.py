"""Symbol-level representation of MLC PCM memory lines.

A 512-bit memory line is stored in 256 4-level (2-bit) PCM cells.  Throughout
the library a *symbol* is the 2-bit value held by one cell and a *state* is the
physical resistance level (S1..S4) the cell is programmed to.  This module
provides the constants and the packing/unpacking routines between the three
representations used by the code base:

* **words** -- ``numpy`` arrays of shape ``(..., 8)`` and dtype ``uint64``,
  one 64-bit machine word per entry, word 0 being the least significant word
  of the line.  This is the canonical in-memory form of a line batch and the
  form used by the compression substrates.
* **symbols** -- arrays of shape ``(..., 256)`` and dtype ``uint8`` holding the
  2-bit symbol values ``0..3``.  Symbol ``j`` of word ``i`` holds bits
  ``(2j+1, 2j)`` of that word, and symbols are laid out word-major so that a
  contiguous slice of the symbol array always corresponds to a contiguous bit
  range of the line.  This is the form used by the coset encoders and by the
  energy / endurance / disturbance models.
* **bytes** -- arrays of shape ``(..., 64)`` and dtype ``uint8``, byte 0 being
  the least significant byte of word 0.  Used by byte-oriented compressors
  (FPC, BDI, COC).

All functions are fully vectorised over leading batch dimensions.
"""

from __future__ import annotations

import numpy as np

#: Number of bits in a PCM memory line (cache-line sized).
BITS_PER_LINE = 512
#: Number of 64-bit words per memory line.
WORDS_PER_LINE = 8
#: Number of bits per machine word.
BITS_PER_WORD = 64
#: Number of 2-bit symbols (MLC cells) per memory line.
SYMBOLS_PER_LINE = 256
#: Number of 2-bit symbols per 64-bit word.
SYMBOLS_PER_WORD = 32
#: Number of bytes per memory line.
BYTES_PER_LINE = 64
#: Number of bytes per 64-bit word.
BYTES_PER_WORD = 8

#: Bit patterns of the four symbols, indexed by symbol value.
SYMBOL_BIT_PATTERNS = ("00", "01", "10", "11")

_SYMBOL_SHIFTS = np.arange(SYMBOLS_PER_WORD, dtype=np.uint64) * np.uint64(2)
_BYTE_SHIFTS = np.arange(BYTES_PER_WORD, dtype=np.uint64) * np.uint64(8)


def _as_word_array(words: np.ndarray) -> np.ndarray:
    """Validate and coerce ``words`` into a ``uint64`` array of full lines."""
    arr = np.asarray(words, dtype=np.uint64)
    if arr.shape[-1] != WORDS_PER_LINE:
        raise ValueError(
            f"expected last dimension of {WORDS_PER_LINE} words, got shape {arr.shape}"
        )
    return arr


def words_to_symbols(words: np.ndarray) -> np.ndarray:
    """Unpack 64-bit words into 2-bit symbols.

    Parameters
    ----------
    words:
        Array of shape ``(..., 8)`` and dtype ``uint64``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(..., 256)`` and dtype ``uint8`` with values in
        ``0..3``.  Symbol ``32*i + j`` holds bits ``(2j+1, 2j)`` of word ``i``.
    """
    arr = _as_word_array(words)
    expanded = arr[..., :, None] >> _SYMBOL_SHIFTS
    symbols = (expanded & np.uint64(3)).astype(np.uint8)
    return symbols.reshape(arr.shape[:-1] + (SYMBOLS_PER_LINE,))


def symbols_to_words(symbols: np.ndarray) -> np.ndarray:
    """Pack 2-bit symbols back into 64-bit words (inverse of :func:`words_to_symbols`)."""
    arr = np.asarray(symbols)
    if arr.shape[-1] != SYMBOLS_PER_LINE:
        raise ValueError(
            f"expected last dimension of {SYMBOLS_PER_LINE} symbols, got shape {arr.shape}"
        )
    if arr.dtype != np.uint64:
        arr = arr.astype(np.uint64)
    grouped = arr.reshape(arr.shape[:-1] + (WORDS_PER_LINE, SYMBOLS_PER_WORD))
    shifted = grouped << _SYMBOL_SHIFTS
    return shifted.sum(axis=-1, dtype=np.uint64)


def words_to_bytes(words: np.ndarray) -> np.ndarray:
    """Unpack 64-bit words into bytes (little-endian within each word)."""
    arr = _as_word_array(words)
    expanded = arr[..., :, None] >> _BYTE_SHIFTS
    out = (expanded & np.uint64(0xFF)).astype(np.uint8)
    return out.reshape(arr.shape[:-1] + (BYTES_PER_LINE,))


def bytes_to_words(data: np.ndarray) -> np.ndarray:
    """Pack bytes back into 64-bit words (inverse of :func:`words_to_bytes`)."""
    arr = np.asarray(data)
    if arr.shape[-1] != BYTES_PER_LINE:
        raise ValueError(
            f"expected last dimension of {BYTES_PER_LINE} bytes, got shape {arr.shape}"
        )
    if arr.dtype != np.uint64:
        arr = arr.astype(np.uint64)
    grouped = arr.reshape(arr.shape[:-1] + (WORDS_PER_LINE, BYTES_PER_WORD))
    shifted = grouped << _BYTE_SHIFTS
    return shifted.sum(axis=-1, dtype=np.uint64)


def words_to_bits(words: np.ndarray) -> np.ndarray:
    """Unpack 64-bit words into individual bits.

    Returns an array of shape ``(..., 512)`` and dtype ``uint8`` where bit
    ``64*i + j`` is bit ``j`` (counting from the LSB) of word ``i``.
    """
    arr = _as_word_array(words)
    shifts = np.arange(BITS_PER_WORD, dtype=np.uint64)
    expanded = arr[..., :, None] >> shifts
    bits = (expanded & np.uint64(1)).astype(np.uint8)
    return bits.reshape(arr.shape[:-1] + (BITS_PER_LINE,))


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack individual bits back into 64-bit words (inverse of :func:`words_to_bits`)."""
    arr = np.asarray(bits)
    if arr.shape[-1] != BITS_PER_LINE:
        raise ValueError(
            f"expected last dimension of {BITS_PER_LINE} bits, got shape {arr.shape}"
        )
    if arr.dtype != np.uint64:
        arr = arr.astype(np.uint64)
    grouped = arr.reshape(arr.shape[:-1] + (WORDS_PER_LINE, BITS_PER_WORD))
    shifts = np.arange(BITS_PER_WORD, dtype=np.uint64)
    shifted = grouped << shifts
    return shifted.sum(axis=-1, dtype=np.uint64)


def bits_to_symbols(bits: np.ndarray) -> np.ndarray:
    """Pack a 512-bit array into 256 symbols (symbol j = bits ``2j+1, 2j``)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.shape[-1] != BITS_PER_LINE:
        raise ValueError(
            f"expected last dimension of {BITS_PER_LINE} bits, got shape {arr.shape}"
        )
    pairs = arr.reshape(arr.shape[:-1] + (SYMBOLS_PER_LINE, 2))
    return (pairs[..., 0] | (pairs[..., 1] << 1)).astype(np.uint8)


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Unpack 256 symbols into a 512-bit array (inverse of :func:`bits_to_symbols`)."""
    arr = np.asarray(symbols, dtype=np.uint8)
    if arr.shape[-1] != SYMBOLS_PER_LINE:
        raise ValueError(
            f"expected last dimension of {SYMBOLS_PER_LINE} symbols, got shape {arr.shape}"
        )
    low = (arr & 1).astype(np.uint8)
    high = ((arr >> 1) & 1).astype(np.uint8)
    bits = np.stack([low, high], axis=-1)
    return bits.reshape(arr.shape[:-1] + (BITS_PER_LINE,))


def complement_symbols(symbols: np.ndarray) -> np.ndarray:
    """Bitwise complement at the symbol level (``00<->11`` and ``01<->10``)."""
    return (3 - np.asarray(symbols, dtype=np.uint8)).astype(np.uint8)


def line_from_int(value: int) -> np.ndarray:
    """Build a single line (shape ``(8,)`` ``uint64``) from a Python integer.

    The integer is interpreted as the full 512-bit line value; word 0 receives
    the least significant 64 bits.
    """
    if value < 0 or value >= (1 << BITS_PER_LINE):
        raise ValueError("line value must be an unsigned 512-bit integer")
    mask = (1 << BITS_PER_WORD) - 1
    words = [(value >> (BITS_PER_WORD * i)) & mask for i in range(WORDS_PER_LINE)]
    return np.array(words, dtype=np.uint64)


def line_to_int(words: np.ndarray) -> int:
    """Convert a single line (shape ``(8,)``) back into a Python integer."""
    arr = _as_word_array(words)
    if arr.ndim != 1:
        raise ValueError("line_to_int expects a single line of shape (8,)")
    value = 0
    for i in range(WORDS_PER_LINE):
        value |= int(arr[i]) << (BITS_PER_WORD * i)
    return value
