"""Metrics collected for every evaluated write request.

The paper reports three per-request statistics for each scheme:

* **write energy** in pJ, split into the energy of the *data* symbols and the
  energy of the *auxiliary* symbols (encoding metadata);
* **updated cells** per write request (the endurance metric -- fewer RESETs
  means longer cell lifetime);
* **write-disturbance errors** per write request (expected count of idle
  neighbouring cells disturbed by the RESET pulses of the write).

:class:`WriteMetrics` accumulates these over any number of requests and
supports merging, so the evaluation harness can process traces in chunks and
combine per-benchmark results into HMI / LMI / overall averages exactly like
Figures 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class WriteMetrics:
    """Accumulated statistics over a set of write requests."""

    requests: int = 0
    data_energy_pj: float = 0.0
    aux_energy_pj: float = 0.0
    updated_data_cells: float = 0.0
    updated_aux_cells: float = 0.0
    disturbance_errors: float = 0.0
    compressed_lines: int = 0
    encoded_lines: int = 0

    # ------------------------------------------------------------------ #
    # Totals and averages
    # ------------------------------------------------------------------ #
    @property
    def total_energy_pj(self) -> float:
        """Total write energy (data + auxiliary) accumulated so far."""
        return self.data_energy_pj + self.aux_energy_pj

    @property
    def updated_cells(self) -> float:
        """Total number of updated cells (data + auxiliary)."""
        return self.updated_data_cells + self.updated_aux_cells

    def _per_request(self, value: float) -> float:
        return value / self.requests if self.requests else 0.0

    @property
    def avg_energy_pj(self) -> float:
        """Average total write energy per request (Figure 8 metric)."""
        return self._per_request(self.total_energy_pj)

    @property
    def avg_data_energy_pj(self) -> float:
        """Average data-symbol write energy per request."""
        return self._per_request(self.data_energy_pj)

    @property
    def avg_aux_energy_pj(self) -> float:
        """Average auxiliary-symbol write energy per request."""
        return self._per_request(self.aux_energy_pj)

    @property
    def avg_updated_cells(self) -> float:
        """Average number of updated cells per request (Figure 9 metric)."""
        return self._per_request(self.updated_cells)

    @property
    def avg_updated_data_cells(self) -> float:
        """Average number of updated data cells per request."""
        return self._per_request(self.updated_data_cells)

    @property
    def avg_updated_aux_cells(self) -> float:
        """Average number of updated auxiliary cells per request."""
        return self._per_request(self.updated_aux_cells)

    @property
    def avg_disturbance_errors(self) -> float:
        """Average write-disturbance errors per request (Figure 10 metric)."""
        return self._per_request(self.disturbance_errors)

    @property
    def compressed_fraction(self) -> float:
        """Fraction of requests whose line was successfully compressed."""
        return self.compressed_lines / self.requests if self.requests else 0.0

    @property
    def encoded_fraction(self) -> float:
        """Fraction of requests that were actually encoded (vs written raw)."""
        return self.encoded_lines / self.requests if self.requests else 0.0

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    def merge(self, other: "WriteMetrics") -> "WriteMetrics":
        """Accumulate another metrics object into this one (in place)."""
        self.requests += other.requests
        self.data_energy_pj += other.data_energy_pj
        self.aux_energy_pj += other.aux_energy_pj
        self.updated_data_cells += other.updated_data_cells
        self.updated_aux_cells += other.updated_aux_cells
        self.disturbance_errors += other.disturbance_errors
        self.compressed_lines += other.compressed_lines
        self.encoded_lines += other.encoded_lines
        return self

    def __add__(self, other: "WriteMetrics") -> "WriteMetrics":
        result = WriteMetrics()
        result.merge(self)
        result.merge(other)
        return result

    @classmethod
    def combine(cls, parts: Iterable["WriteMetrics"]) -> "WriteMetrics":
        """Combine an iterable of metrics into one."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, float]:
        """Summary of the per-request averages (used by reports and benches)."""
        return {
            "requests": float(self.requests),
            "avg_energy_pj": self.avg_energy_pj,
            "avg_data_energy_pj": self.avg_data_energy_pj,
            "avg_aux_energy_pj": self.avg_aux_energy_pj,
            "avg_updated_cells": self.avg_updated_cells,
            "avg_disturbance_errors": self.avg_disturbance_errors,
            "compressed_fraction": self.compressed_fraction,
            "encoded_fraction": self.encoded_fraction,
        }

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"WriteMetrics(requests={self.requests}, "
            f"avg_energy={self.avg_energy_pj:.1f}pJ "
            f"(data={self.avg_data_energy_pj:.1f}, aux={self.avg_aux_energy_pj:.1f}), "
            f"avg_updated_cells={self.avg_updated_cells:.1f}, "
            f"avg_disturbance={self.avg_disturbance_errors:.2f}, "
            f"compressed={self.compressed_fraction:.1%})"
        )


def relative_improvement(baseline: float, value: float) -> float:
    """Fractional improvement of ``value`` relative to ``baseline``.

    A positive result means ``value`` is lower (better) than ``baseline``.
    Returns 0 for a zero baseline.
    """
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline
