"""Write-disturbance model for MLC PCM.

Write disturbance occurs when the high heat of a RESET pulse (applied to every
cell that is rewritten under differential write) reduces the resistance of
*idle* neighbouring cells.  The disturbance is unidirectional: it can only
lower a cell's resistance, so the cell in the minimum-resistance state (S2) is
immune.  Following Table II of the paper (20 nm technology node), the
disturbance error rates (DER) of an idle cell adjacent to a written cell are:

==========  =========
State       DER
==========  =========
``S1``      12.3 %
``S2``      0.0 %
``S3``      27.6 %
``S4``      15.2 %
==========  =========

Cells of a memory line are modelled as a linear array (the physical word-line
layout); the neighbours of cell ``i`` are cells ``i-1`` and ``i+1``.  Two
counting modes are supported:

* *expected-value* (default): each idle cell adjacent to at least one updated
  cell contributes ``DER[state]`` expected errors.  This is deterministic and
  is what the benchmark harness uses.
* *Monte-Carlo*: errors are sampled with a seeded generator, for studies of
  the verify-and-restore loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Default disturbance error rates per state S1..S4 (Table II).
DEFAULT_DISTURBANCE_RATES = (0.123, 0.0, 0.276, 0.152)


def neighbor_of_updated(changed: np.ndarray) -> np.ndarray:
    """Boolean mask of cells that are adjacent to at least one updated cell.

    Parameters
    ----------
    changed:
        Boolean array of shape ``(..., ncells)``; ``True`` for cells rewritten
        by the current write request.

    Returns
    -------
    numpy.ndarray
        Boolean array of the same shape; ``True`` where the left or right
        neighbour (within the line) is updated.
    """
    changed = np.asarray(changed, dtype=bool)
    neighbor = np.zeros_like(changed)
    neighbor[..., :-1] |= changed[..., 1:]
    neighbor[..., 1:] |= changed[..., :-1]
    return neighbor


@dataclass(frozen=True)
class DisturbanceModel:
    """Per-state write-disturbance error rates of idle MLC PCM cells."""

    rates: Tuple[float, float, float, float] = DEFAULT_DISTURBANCE_RATES

    def __post_init__(self) -> None:
        if len(self.rates) != 4:
            raise ValueError("rates must have 4 entries (S1..S4)")
        if any(r < 0 or r > 1 for r in self.rates):
            raise ValueError("rates must be probabilities in [0, 1]")

    @property
    def rate_per_state(self) -> np.ndarray:
        """Disturbance rates as a numpy lookup table indexed by state."""
        return np.asarray(self.rates, dtype=np.float64)

    def vulnerable_mask(self, stored_states: np.ndarray, changed: np.ndarray) -> np.ndarray:
        """Idle cells that may be disturbed by the current write.

        A cell is vulnerable when it is idle (not rewritten) and at least one
        of its neighbours is rewritten (and therefore RESET).
        """
        stored_states = np.asarray(stored_states)
        changed = np.asarray(changed, dtype=bool)
        if stored_states.shape != changed.shape:
            raise ValueError("stored_states and changed must have the same shape")
        return (~changed) & neighbor_of_updated(changed)

    def expected_errors(self, stored_states: np.ndarray, changed: np.ndarray) -> np.ndarray:
        """Expected number of disturbance errors per line.

        Parameters
        ----------
        stored_states:
            Integer array ``(..., ncells)`` of the states held by idle cells
            (for rewritten cells the value is ignored).
        changed:
            Boolean array of rewritten cells.

        Returns
        -------
        numpy.ndarray
            Float array of shape ``(...,)`` with the expected error count of
            each line.
        """
        return self.expected_errors_per_cell(stored_states, changed).sum(axis=-1)

    def expected_errors_per_cell(
        self, stored_states: np.ndarray, changed: np.ndarray
    ) -> np.ndarray:
        """Per-cell expected disturbance errors (the summand of
        :meth:`expected_errors`).

        Routed through the active array backend's ``disturb_cells`` kernel
        when one is available: the kernel fuses the neighbour test, the
        vulnerability mask and the rate gather into a single pass, and is
        elementwise-exact, so every backend produces bit-identical cells.
        The order-sensitive float reduction stays in the caller's numpy
        ``.sum``, shared by all paths.
        """
        stored_states = np.asarray(stored_states)
        changed = np.asarray(changed, dtype=bool)
        if stored_states.shape != changed.shape:
            raise ValueError("stored_states and changed must have the same shape")
        from ..compression.backend import get_backend, kernel_timer

        backend = get_backend()
        kernel = backend.compiled.get("disturb_cells")
        if (
            kernel is not None
            and stored_states.ndim == 2
            and stored_states.dtype == np.uint8
            and stored_states.flags.c_contiguous
            and changed.flags.c_contiguous
        ):
            with kernel_timer(backend.name, "disturb_cells"):
                return kernel(stored_states, changed, self.rate_per_state)
        vulnerable = self.vulnerable_mask(stored_states, changed)
        return self.rate_per_state[stored_states] * vulnerable

    def sample_errors(
        self,
        stored_states: np.ndarray,
        changed: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Monte-Carlo sample of disturbed cells.

        Returns a boolean array marking the idle cells that flipped due to
        disturbance in this write.
        """
        vulnerable = self.vulnerable_mask(stored_states, changed)
        probs = self.rate_per_state[np.asarray(stored_states)]
        draws = rng.random(size=probs.shape)
        return vulnerable & (draws < probs)


#: The default disturbance model used across the paper's evaluation.
DEFAULT_DISTURBANCE_MODEL = DisturbanceModel()
