"""Write-energy model of a 4-level (MLC) PCM cell.

The model follows Section VII-A and Table II of the paper.  A cell whose value
does not change under differential write costs nothing.  A cell whose value
changes is first RESET (about 36 pJ) and then, depending on the target state,
programmed with iterative SET pulses:

==========  ==================  =====================
State       SET energy (pJ)     total write energy
==========  ==================  =====================
``S1``      0                   36 pJ (RESET only)
``S2``      20                  56 pJ
``S3``      307                 343 pJ
``S4``      547                 583 pJ
==========  ==================  =====================

States are numbered by increasing write energy (S1 cheapest, S4 most
expensive), matching the paper's convention.  The model is a frozen dataclass
so that experiment configurations are hashable and can be swept (Figure 14
varies the S3/S4 SET energies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Number of distinct resistance states of a 4-level cell.
NUM_STATES = 4

#: Default RESET pulse energy in picojoules (Table II).
DEFAULT_RESET_ENERGY_PJ = 36.0

#: Default per-state SET energies in picojoules, indexed S1..S4 (Table II).
DEFAULT_SET_ENERGY_PJ = (0.0, 20.0, 307.0, 547.0)


@dataclass(frozen=True)
class EnergyModel:
    """Per-state write energy of an MLC PCM cell.

    Parameters
    ----------
    reset_energy_pj:
        Energy of the initial RESET pulse applied to every cell whose value
        changes.
    set_energy_pj:
        SET energy required to reach each of the four states, indexed by
        state ``S1..S4``.
    """

    reset_energy_pj: float = DEFAULT_RESET_ENERGY_PJ
    set_energy_pj: Tuple[float, float, float, float] = DEFAULT_SET_ENERGY_PJ

    def __post_init__(self) -> None:
        if len(self.set_energy_pj) != NUM_STATES:
            raise ValueError(f"set_energy_pj must have {NUM_STATES} entries")
        if self.reset_energy_pj < 0 or any(e < 0 for e in self.set_energy_pj):
            raise ValueError("energies must be non-negative")

    @property
    def write_energy_per_state(self) -> np.ndarray:
        """Total energy (RESET + SET) of programming a changed cell to each state."""
        return self.reset_energy_pj + np.asarray(self.set_energy_pj, dtype=np.float64)

    def cell_write_energy(self, new_states: np.ndarray, changed: np.ndarray) -> np.ndarray:
        """Per-cell write energy for a differential write.

        Parameters
        ----------
        new_states:
            Integer array of target states (values ``0..3``).
        changed:
            Boolean array of the same shape; ``True`` where the stored state
            differs from the target state (those cells are rewritten).

        Returns
        -------
        numpy.ndarray
            Float array of per-cell energies in pJ; idle cells contribute 0.
        """
        new_states = np.asarray(new_states)
        changed = np.asarray(changed, dtype=bool)
        if new_states.shape != changed.shape:
            raise ValueError("new_states and changed must have the same shape")
        # Route through the active array backend's compiled kernel table when
        # one is available (lazy import: core must not depend on compression
        # at import time).  The kernel is elementwise -- a table gather where
        # changed, 0.0 elsewhere -- so it is bit-identical to the numpy
        # expression below for every backend.
        from ..compression.backend import get_backend, kernel_timer

        backend = get_backend()
        kernel = backend.compiled.get("energy_cells")
        if (
            kernel is not None
            and new_states.dtype == np.uint8
            and new_states.flags.c_contiguous
            and changed.flags.c_contiguous
        ):
            with kernel_timer(backend.name, "energy_cells"):
                flat = kernel(
                    new_states.reshape(-1),
                    changed.reshape(-1),
                    self.write_energy_per_state,
                )
            return flat.reshape(new_states.shape)
        return self.write_energy_per_state[new_states] * changed

    def scaled_intermediate_states(self, s3_set_pj: float, s4_set_pj: float) -> "EnergyModel":
        """Return a copy with modified SET energies for the intermediate states.

        Used by the Figure 14 sensitivity study, which reduces the cost of the
        high-energy states S3 and S4 while keeping S1 and S2 unchanged.
        """
        new_set = (self.set_energy_pj[0], self.set_energy_pj[1], float(s3_set_pj), float(s4_set_pj))
        return EnergyModel(reset_energy_pj=self.reset_energy_pj, set_energy_pj=new_set)


#: The default energy model used across the paper's evaluation.
DEFAULT_ENERGY_MODEL = EnergyModel()

#: The four intermediate-state energy configurations of Figure 14 as
#: ``(S3 SET energy, S4 SET energy)`` pairs in pJ.
FIGURE14_ENERGY_LEVELS: Tuple[Tuple[float, float], ...] = (
    (307.0, 547.0),
    (152.0, 273.0),
    (75.0, 135.0),
    (50.0, 80.0),
)


def figure14_energy_models(base: EnergyModel = DEFAULT_ENERGY_MODEL) -> Tuple[EnergyModel, ...]:
    """Build the four energy models of the Figure 14 sensitivity sweep."""
    return tuple(base.scaled_intermediate_states(s3, s4) for s3, s4 in FIGURE14_ENERGY_LEVELS)
