"""Parallel trace-evaluation engine.

The paper's headline results (Figures 8-14) sweep many encoder configurations
over many per-benchmark write traces.  Every (encoder, trace, sweep-point)
combination is independent, so the sweep is embarrassingly parallel; this
module provides the harness that exploits that.

:class:`ParallelRunner` fans *work units* -- an encoder evaluated on a trace
under an :class:`~repro.core.config.EvaluationConfig` -- out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each unit is further split
into its evaluation chunks (the same ``config.chunk_size`` chunks the serial
runner uses), which become the individual executor tasks, so even a single
long trace spreads across all workers.

Determinism is a hard guarantee, not a best effort:

* chunk results are reduced with :meth:`WriteMetrics.merge
  <repro.core.metrics.WriteMetrics.merge>` in (unit, chunk) submission order,
  so floating-point accumulation is identical for any worker count;
* Monte-Carlo disturbance sampling draws from per-chunk
  :class:`numpy.random.SeedSequence` streams spawned from
  ``(config.seed, unit_index)`` (see
  :func:`~repro.evaluation.runner.chunk_streams`), so sampled error counts do
  not depend on scheduling either.

``n_jobs=1`` (the default) executes the exact serial path in-process -- no
executor, no pickling -- which makes it both the fallback and the reference
the property tests compare the parallel path against bit-for-bit.

Two scalability features ride on top of the executor:

* **zero-copy trace transport** -- instead of pickling each chunk's arrays
  into its task, the runner exports every unit's trace once through
  :class:`repro.traces.transport.TraceExporter` (shared-memory segment for
  in-memory traces, mmap descriptor for corpus-backed ones) and ships workers
  ``(descriptor, start, stop)`` triples; pickling remains the transparent
  fallback and every transport is bit-identical by construction;
* **a persistent worker pool** -- used as a context manager (or with
  ``persistent=True``) the runner keeps one
  :class:`~concurrent.futures.ProcessPoolExecutor` alive across ``run()``
  calls, so sweep helpers and experiment drivers stop paying pool start-up
  per call (see :func:`shared_runner`);
* **streaming dispatch with backpressure** -- a work unit may carry a
  :class:`~repro.workloads.trace.ChunkSource` instead of a materialised
  trace; its chunks are then produced lazily and submitted with at most
  ``window`` in flight, so a trace larger than RAM evaluates with memory
  bounded by ``window x chunk_size`` lines while the submission-order
  reduction keeps the result bit-identical to the serial path.
"""

from __future__ import annotations

import atexit
import logging
import os
import random
import time
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import nullcontext
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..coding.base import WriteEncoder
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..compression.backend import use_array_backend
from ..core.errors import ConfigurationError
from ..core.metrics import WriteMetrics
from ..faults import FaultAction, TransientError
from ..faults import execute as _execute_fault
from ..faults import take as _take_fault
from ..obs import ObsPayload, TaskContext, absorb, collect, count, observe, span, task_context
from ..traces.transport import TraceDescriptor, TraceExporter, attach_trace
from ..workloads.trace import ChunkSource, WriteTrace
from .runner import (
    chunk_group_size,
    chunk_stream,
    chunk_streams,
    evaluate_chunk_group,
    n_chunks_of,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (serve layers above this)
    from ..serve.results import ResultStore

logger = logging.getLogger(__name__)


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``-1`` all mean "use every available core" (the
    joblib convention); positive values are taken literally.
    """
    if n_jobs is None or n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ConfigurationError(f"n_jobs must be positive, 0, -1 or None: {n_jobs}")
    return int(n_jobs)


@dataclass(frozen=True)
class WorkUnit:
    """One independent piece of sweep work: a scheme evaluated on a trace.

    ``key`` labels the unit for reduction -- units sharing a key have their
    metrics merged (in submission order) by :meth:`ParallelRunner.run`.
    Typical keys: a scheme name, a benchmark name, a granularity, or a
    ``(sweep-point, role)`` tuple.

    ``trace`` is a materialised :class:`WriteTrace` or any re-iterable
    :class:`~repro.workloads.trace.ChunkSource`; units carrying a streaming
    source are dispatched through the bounded-window streaming path (see
    :meth:`ParallelRunner.map`).
    """

    key: Hashable
    encoder: WriteEncoder
    trace: Union[WriteTrace, ChunkSource]
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL


@dataclass(frozen=True)
class _Shard:
    """One chunk *group* of one work unit -- the granularity of dispatch.

    A shard spans one or more consecutive evaluation chunks (several when the
    config's super-batch accumulator coalesces them); ``chunk_index`` is the
    first chunk of the group and ``streams`` carries one RNG stream per
    member chunk.  The group's data travels either inline (``chunk``, the
    pickled fallback and the serial path) or by reference (``descriptor``
    naming a shared segment or corpus file plus the ``[start, stop)`` line
    range); the two are mutually exclusive.  ``array_backend`` re-selects the
    parent's kernel backend inside the worker process (the selection is
    thread-local state that does not travel with the fork/spawn).
    ``obs_ctx`` carries the parent's observation context (when tracing is
    active at dispatch) so the worker's spans stitch under the dispatching
    span; it is ``None`` -- and costs nothing -- otherwise.
    """

    unit_index: int
    chunk_index: int
    encoder: WriteEncoder
    disturbance_model: DisturbanceModel
    streams: Tuple[Optional[np.random.SeedSequence], ...]
    chunk_size: int
    chunk: Optional[WriteTrace] = None
    descriptor: Optional[TraceDescriptor] = None
    start: int = 0
    stop: int = 0
    array_backend: Optional[str] = None
    obs_ctx: Optional[TaskContext] = None
    #: ``config.fused_tile_lines`` of the owning unit -- lets the worker
    #: route an over-tile-sized group through the fused encode+metrics path.
    tile_lines: Optional[int] = None
    #: Fired fault directive riding on this dispatch (chaos testing only).
    #: Attached by the parent at shard-generation time -- dispatch order is
    #: deterministic, worker scheduling is not -- and stripped whenever the
    #: shard is resubmitted, so each planned fault fires exactly once and the
    #: recovery attempt runs clean.
    inject: Optional[FaultAction] = None


def _evaluate_shard(
    shard: _Shard,
) -> Tuple[int, int, List[WriteMetrics], Optional[ObsPayload]]:
    """Evaluate one shard; runs in a worker process (or inline when serial).

    The group is encoded in one ``encode_batch`` call; metrics come back *per
    chunk window* (not pre-merged), so the parent merges every chunk of every
    shard in exactly the serial submission order -- grouping chunks therefore
    cannot change a single float rounding, whatever the group size.

    The fourth element is the worker's observability payload: ``None`` unless
    the shard ran in a separate process during an active observation, in
    which case the parent absorbs it in the same submission order as the
    metrics, keeping the span/metric aggregation deterministic too.
    """
    if shard.inject is not None:
        _execute_fault(shard.inject)
    with collect(shard.obs_ctx) as collector:
        with span(
            "evaluate_shard",
            unit=shard.unit_index,
            chunk=shard.chunk_index,
            scheme=shard.encoder.name,
        ):
            chunk = shard.chunk
            if chunk is None:
                chunk = attach_trace(shard.descriptor)[shard.start:shard.stop]
            scope = (
                use_array_backend(shard.array_backend)
                if shard.array_backend is not None
                else nullcontext()
            )
            with scope:
                metrics = list(
                    evaluate_chunk_group(
                        shard.encoder,
                        chunk,
                        shard.streams,
                        shard.chunk_size,
                        shard.disturbance_model,
                        tile_lines=shard.tile_lines,
                    )
                )
    return shard.unit_index, shard.chunk_index, metrics, collector.payload()


def _arm_shard(shard: _Shard) -> _Shard:
    """Attach a fired fault directive to ``shard``, if the plan says so.

    Consulted once per generated shard, in the parent's deterministic
    generation order: the ``task`` site counts every shard, the ``attach``
    site additionally counts shards that will resolve a transport descriptor.
    No-ops (and costs one function call) when no fault plan is active.
    """
    action = _take_fault("task")
    if action is None and shard.descriptor is not None:
        action = _take_fault("attach")
    if action is None:
        return shard
    return replace(shard, inject=action)


def _strip_inject(item: Any) -> Any:
    """A copy of ``item`` without its fault directive (for resubmission)."""
    if isinstance(item, _Shard) and item.inject is not None:
        return replace(item, inject=None)
    return item


def _terminate_executor(executor: Executor) -> None:
    """Tear a (possibly broken or hung) pool down without blocking.

    A plain ``shutdown(wait=True)`` would block behind a hung worker, so the
    process backend's workers are terminated first; thread workers cannot be
    killed, so a hung thread is simply abandoned (its eventual result is
    discarded -- tasks are pure, so that is safe).
    """
    processes = getattr(executor, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass
    executor.shutdown(wait=False, cancel_futures=True)


@dataclass(frozen=True)
class _ExportedTrace:
    """Placeholder for a :class:`WriteTrace` argument of a ``starmap`` task.

    Carries the transport descriptor instead of the trace's arrays; the
    worker resolves it back into a (view-backed) trace via the per-process
    attachment cache before calling the task function.
    """

    descriptor: TraceDescriptor


def _call_star(
    task: Tuple[Callable[..., Any], Tuple, Optional[TaskContext]],
) -> Tuple[Any, Optional[ObsPayload]]:
    """Apply ``func(*args)``; module-level so it pickles into workers."""
    func, args, obs_ctx = task
    args = tuple(
        attach_trace(arg.descriptor) if isinstance(arg, _ExportedTrace) else arg
        for arg in args
    )
    with collect(obs_ctx) as collector:
        with span("starmap_task", task=getattr(func, "__name__", str(func))):
            result = func(*args)
    return result, collector.payload()


class ParallelRunner:
    """Fan (encoder x trace x sweep-point) work units out over worker processes.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) runs the exact serial path in the
        current process; ``None``, ``0`` or ``-1`` use every available core.
    executor_chunksize:
        Historical ``Executor.map`` batching knob, accepted for backward
        compatibility and ignored: the self-healing engine dispatches tasks
        as individual futures so lost work can be resubmitted precisely.
        Shards are chunk *groups* (super-batches), so per-task dispatch
        overhead is already amortised.
    backend:
        ``"process"`` (default) fans shards out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`; ``"thread"`` uses a
        :class:`~concurrent.futures.ThreadPoolExecutor` instead.  The encode
        hot path is vectorised ``numpy`` bit-twiddling that releases the GIL,
        so threads overlap almost as well as processes while skipping
        process start-up, pickling and trace export entirely (workers share
        the parent's memory) -- the right choice for small sweeps and
        short-lived runners.  Both backends share the submission-order
        reduction, so results are bit-identical across backends and worker
        counts.
    transport:
        How chunk data reaches the workers: ``"auto"`` (mmap for
        corpus-backed traces, shared memory for in-memory ones, pickling as
        fallback), ``"mmap"`` or ``"shm"`` to *request* exactly one
        descriptor kind (traces that cannot travel that way -- e.g. an
        in-memory trace under ``"mmap"`` -- silently fall back to pickling),
        or ``"pickle"`` to force the legacy behaviour everywhere.  The
        transport benchmark compares all three.  The thread backend ignores
        transport: chunks are shared memory already.
    persistent:
        Keep the process pool alive across ``run()``/``map()`` calls until
        :meth:`close` (entering the runner as a context manager implies
        this).  One-shot runners keep the historical
        build-and-tear-down-per-call behaviour.
    window:
        In-flight task cap of the *streaming* dispatch path (work units whose
        trace is a :class:`~repro.workloads.trace.ChunkSource` rather than a
        materialised trace).  At most ``window`` chunks exist between the
        producing iterator and the reducer at any moment -- the backpressure
        that bounds memory by ``window x chunk_size`` lines no matter how
        long the stream is.  Defaults to ``4 x n_jobs``.
    results_store:
        Optional :class:`~repro.serve.results.ResultStore` memoising
        per-unit metrics.  When set, :meth:`map` consults it before
        dispatching: units whose key hits return the stored metrics without
        touching the pool (zero ``encode_batch`` calls), misses evaluate
        normally -- with their original unit index, so RNG streams are
        unchanged -- and are written back.  Mutable; :func:`shared_runner`
        re-binds it on every acquisition so a store never leaks from one
        driver into the next.
    task_timeout:
        Per-task watchdog in seconds (``None``, the default, disables it).
        When the oldest in-flight task exceeds the timeout the pool is
        presumed hung: it is rebuilt and the lost work resubmitted, exactly
        like a broken pool.
    task_retries:
        Attempts beyond the first granted to a task failing with a
        :class:`~repro.faults.TransientError` before the error propagates.
    max_pool_rebuilds:
        Consecutive pool deaths (broken pool or watchdog timeout) tolerated
        before the runner degrades to in-process serial execution for the
        rest of the call instead of failing it.  Any successfully reduced
        task resets the count.
    retry_backoff_s:
        Base of the jittered exponential backoff slept before each pool
        rebuild (``base * 2**(n-1)``, +-50% jitter).

    **Self-healing.**  Worker failures do not abort a run: a broken process
    pool (e.g. an OOM-killed worker) or a watchdog timeout rebuilds the pool
    and resubmits only the tasks whose results have not been reduced yet; a
    task failing with a :class:`~repro.faults.TransientError` is retried on
    its own.  Because the reduction consumes results strictly in submission
    order and every task is a pure function of its shard, recovered runs
    are bit-identical to clean runs -- recovery is visible only as
    ``pool_rebuilds``/``tasks_retried``/``task_timeouts`` observability
    counters (and a logged warning when the runner degrades to serial).

    Results are bit-identical for every ``n_jobs`` value *and* every
    transport -- see the module docstring for how seeding and reduction order
    guarantee this.  Store hits are bit-identical too: records round-trip
    the raw metric accumulators through JSON ``repr`` exactly.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        executor_chunksize: Optional[int] = None,
        transport: str = "auto",
        persistent: bool = False,
        window: Optional[int] = None,
        backend: str = "process",
        results_store: Optional["ResultStore"] = None,
        task_timeout: Optional[float] = None,
        task_retries: int = 2,
        max_pool_rebuilds: int = 3,
        retry_backoff_s: float = 0.1,
    ):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.executor_chunksize = executor_chunksize
        if transport not in ("auto", "mmap", "shm", "pickle"):
            raise ConfigurationError(f"unknown transport {transport!r}")
        self.transport = transport
        if backend not in ("process", "thread"):
            raise ConfigurationError(
                f"unknown backend {backend!r} (choose 'process' or 'thread')"
            )
        self.backend = backend
        self.persistent = persistent
        if window is not None and window < 1:
            raise ConfigurationError(f"window must be a positive integer: {window}")
        self.window = window
        self.results_store = results_store
        if task_timeout is not None and not task_timeout > 0:
            raise ConfigurationError(f"task_timeout must be positive: {task_timeout}")
        self.task_timeout = task_timeout
        if task_retries < 0:
            raise ConfigurationError(f"task_retries must be >= 0: {task_retries}")
        self.task_retries = task_retries
        if max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0: {max_pool_rebuilds}"
            )
        self.max_pool_rebuilds = max_pool_rebuilds
        self.retry_backoff_s = retry_backoff_s
        self._executor: Optional[Executor] = None
        self._exporter: Optional[TraceExporter] = None
        self._enter_depth = 0
        self._persistent_before_enter = persistent

    # ------------------------------------------------------------------ #
    # Pool lifetime
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ParallelRunner":
        # Depth-counted so nested `with` blocks on one runner neither close
        # the pool mid-outer-block nor clobber the saved mode.
        if self._enter_depth == 0:
            self._persistent_before_enter = self.persistent
            self.persistent = True
        self._enter_depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._enter_depth -= 1
        if self._enter_depth > 0:
            return
        self.close()
        # Restore the pre-enter mode: a runner reused after its `with` block
        # behaves like one-shot again instead of silently rebuilding a pool
        # and exporter that nothing would ever shut down.
        self.persistent = self._persistent_before_enter

    def close(self) -> None:
        """Shut down the persistent worker pool and exports (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._exporter is not None:
            self._exporter.release()
            self._exporter = None

    # ------------------------------------------------------------------ #
    # Work-unit evaluation
    # ------------------------------------------------------------------ #
    def _shards(
        self,
        units: Sequence[WorkUnit],
        descriptors: Optional[Sequence[Optional[TraceDescriptor]]] = None,
        obs_ctx: Optional[TaskContext] = None,
        rng_indices: Optional[Sequence[int]] = None,
    ) -> Iterator[_Shard]:
        # ``rng_indices`` decouples a unit's RNG identity from its position
        # in this call: when the result store serves some units from cache,
        # the misses still seed their disturbance streams from the index
        # they hold in the *full* unit list, keeping sampled results
        # bit-identical to an uncached run.
        for unit_index, unit in enumerate(units):
            n_chunks = n_chunks_of(unit.trace, unit.config)
            rng_index = rng_indices[unit_index] if rng_indices is not None else unit_index
            streams = chunk_streams(unit.config, n_chunks, rng_index)
            descriptor = descriptors[unit_index] if descriptors else None
            chunk_size = unit.config.chunk_size
            group_chunks = chunk_group_size(unit.config)
            for first in range(0, n_chunks, group_chunks):
                members = range(first, min(n_chunks, first + group_chunks))
                group_streams = tuple(streams[index] for index in members)
                start = first * chunk_size
                stop = min(len(unit.trace), (first + len(members)) * chunk_size)
                if descriptor is not None:
                    shard = _Shard(
                        unit_index=unit_index,
                        chunk_index=first,
                        encoder=unit.encoder,
                        disturbance_model=unit.disturbance_model,
                        streams=group_streams,
                        chunk_size=chunk_size,
                        descriptor=descriptor,
                        start=start,
                        stop=stop,
                        array_backend=unit.config.array_backend,
                        obs_ctx=obs_ctx,
                        tile_lines=unit.config.fused_tile_lines,
                    )
                else:
                    shard = _Shard(
                        unit_index=unit_index,
                        chunk_index=first,
                        encoder=unit.encoder,
                        disturbance_model=unit.disturbance_model,
                        streams=group_streams,
                        chunk_size=chunk_size,
                        chunk=unit.trace[start:stop],
                        array_backend=unit.config.array_backend,
                        obs_ctx=obs_ctx,
                        tile_lines=unit.config.fused_tile_lines,
                    )
                yield _arm_shard(shard)

    def map(self, units: Sequence[WorkUnit]) -> List[WriteMetrics]:
        """Evaluate every unit and return one :class:`WriteMetrics` per unit.

        ``map(units)[i]`` equals
        ``evaluate_trace(units[i].encoder, units[i].trace, ..., unit_index=i)``
        exactly, for any ``n_jobs`` and any transport.

        Units whose trace is a streaming :class:`~repro.workloads.trace
        .ChunkSource` (no ``len``, chunks produced on the fly) are dispatched
        through the bounded-window streaming path; a call mixing streaming
        and materialised units runs entirely on that path (materialised
        traces then travel pickled per chunk instead of zero-copy, which is
        correct but slower -- keep streaming sources in their own call when
        that matters).

        With a :attr:`results_store` attached, units whose key hits the
        store return memoised metrics without dispatching (streaming units
        are never memoised -- their key would cost a full extra pass); the
        misses evaluate under their original unit index and are written
        back, so a partially cached call is still bit-identical to a fresh
        one.
        """
        units = list(units)
        store = self.results_store
        if store is None:
            return self._map_compute(units, None)
        results: List[Optional[WriteMetrics]] = [None] * len(units)
        misses: List[Tuple[int, WorkUnit, Any]] = []
        for index, unit in enumerate(units):
            key = store.unit_key(unit, index)
            cached = store.get(key) if key is not None else None
            if cached is not None:
                results[index] = cached
            else:
                misses.append((index, unit, key))
        if misses:
            computed = self._map_compute(
                [unit for _, unit, _ in misses],
                [index for index, _, _ in misses],
            )
            for (index, _, key), metrics in zip(misses, computed):
                results[index] = metrics
                if key is not None:
                    store.put(key, metrics)
        return results

    def _map_compute(
        self, units: List[WorkUnit], rng_indices: Optional[List[int]]
    ) -> List[WriteMetrics]:
        """Evaluate ``units`` for real (no store consultation).

        ``rng_indices`` carries each unit's index in the caller's full unit
        list (``None`` means positions); disturbance-sampling streams are
        seeded from it so cache-partial calls reproduce the uncached run.
        """
        if any(not isinstance(unit.trace, WriteTrace) for unit in units):
            return self._map_streaming(units, rng_indices)
        per_unit = [WriteMetrics() for _ in units]
        exporter = None
        map_span = span(
            "parallel_map", units=len(units), n_jobs=self.n_jobs, backend=self.backend
        )
        try:
            map_span.__enter__()
            obs_ctx = task_context()
            descriptors = None
            total_shards = sum(
                -(-n_chunks_of(unit.trace, unit.config) // chunk_group_size(unit.config))
                for unit in units
            )
            # Export only when _execute will actually dispatch to worker
            # *processes*; thread workers share the parent's memory, so the
            # shm copy (and the parent-side attachment it would leave in the
            # worker cache) would be pure waste for them too.
            if (
                self.backend == "process"
                and self.n_jobs > 1
                and total_shards > 1
                and self.transport != "pickle"
            ):
                exporter = self._acquire_exporter()
                descriptors = [exporter.export(unit.trace) for unit in units]
            shards = list(self._shards(units, descriptors, obs_ctx, rng_indices))
            for unit_index, _, group_metrics, payload in self._execute(
                _evaluate_shard, shards
            ):
                absorb(payload)
                for metrics in group_metrics:
                    per_unit[unit_index].merge(metrics)
        finally:
            map_span.__exit__(None, None, None)
            if exporter is not None and exporter is not self._exporter:
                exporter.release()
            elif self._exporter is not None:
                # Keep this call's exports for reuse next run(); drop the
                # rest so looping over ever-new traces can't grow /dev/shm.
                # This prunes even when *this* call exported nothing, so a
                # persistent runner that did one big exporting sweep cannot
                # pin that trace's shm segment through later small calls.
                self._exporter.prune(id(unit.trace) for unit in units)
        return per_unit

    def _acquire_exporter(self) -> TraceExporter:
        """The exporter for this call: cached for persistent runners.

        A persistent runner keeps one exporter for its whole lifetime, so
        repeated ``run()`` calls over the same (memoised) traces reuse one
        shared-memory segment per trace -- stable descriptors also mean the
        workers' attachment caches hit instead of accumulating stale
        segments.  One-shot runners release their exports per call.
        """
        if self.persistent:
            if self._exporter is None:
                self._exporter = TraceExporter(self.transport)
            return self._exporter
        return TraceExporter(self.transport)

    def _map_streaming(
        self,
        units: Sequence[WorkUnit],
        rng_indices: Optional[Sequence[int]] = None,
    ) -> List[WriteMetrics]:
        """Evaluate units whose chunks are produced on the fly.

        Shards are generated lazily -- unit by unit, chunk by chunk, in
        exactly the serial order -- and dispatched with at most
        :attr:`window` in flight (:meth:`_execute_windowed`), so ingest and
        synthesis advance only as fast as the workers drain them and the
        whole pipeline never holds more than ``window`` chunks.  Results are
        reduced in submission order, which keeps the metrics bit-identical
        to the serial path for any ``n_jobs``.
        """
        per_unit = [WriteMetrics() for _ in units]

        with span(
            "map_streaming", units=len(units), n_jobs=self.n_jobs, backend=self.backend
        ):
            obs_ctx = task_context()

            def shards() -> Iterator[_Shard]:
                for unit_index, unit in enumerate(units):
                    rng_index = (
                        rng_indices[unit_index]
                        if rng_indices is not None
                        else unit_index
                    )
                    chunk_size = unit.config.chunk_size
                    group_chunks = chunk_group_size(unit.config)
                    buffer: List[WriteTrace] = []
                    first_index = 0

                    def group_shard() -> _Shard:
                        group = (
                            buffer[0] if len(buffer) == 1 else WriteTrace.concat(buffer)
                        )
                        return _arm_shard(_Shard(
                            unit_index=unit_index,
                            chunk_index=first_index,
                            encoder=unit.encoder,
                            disturbance_model=unit.disturbance_model,
                            streams=tuple(
                                chunk_stream(
                                    unit.config, rng_index, first_index + offset
                                )
                                for offset in range(len(buffer))
                            ),
                            chunk_size=chunk_size,
                            chunk=group,
                            array_backend=unit.config.array_backend,
                            obs_ctx=obs_ctx,
                            tile_lines=unit.config.fused_tile_lines,
                        ))

                    for chunk_index, chunk in enumerate(unit.trace.chunks(chunk_size)):
                        if not buffer:
                            first_index = chunk_index
                        buffer.append(chunk)
                        if len(buffer) >= group_chunks:
                            yield group_shard()
                            buffer = []
                    if buffer:
                        yield group_shard()

            for unit_index, _, group_metrics, payload in self._execute_windowed(
                _evaluate_shard, shards()
            ):
                absorb(payload)
                for metrics in group_metrics:
                    per_unit[unit_index].merge(metrics)
        return per_unit

    def run(self, units: Sequence[WorkUnit]) -> Dict[Hashable, WriteMetrics]:
        """Evaluate every unit and reduce the results by ``unit.key``.

        Keys appear in first-submission order; units sharing a key are merged
        in submission order (so e.g. per-granularity totals accumulate their
        traces exactly like the serial sweep loop did).
        """
        units = list(units)
        reduced: Dict[Hashable, WriteMetrics] = {}
        for unit, metrics in zip(units, self.map(units)):
            reduced.setdefault(unit.key, WriteMetrics()).merge(metrics)
        return reduced

    # ------------------------------------------------------------------ #
    # Generic fan-out
    # ------------------------------------------------------------------ #
    def starmap(self, func: Callable[..., Any], tasks: Iterable[Tuple]) -> List[Any]:
        """Apply ``func(*args)`` to every args-tuple, preserving order.

        Used by sweep helpers whose work is not metric-shaped (e.g. the
        compression-coverage study).  ``func`` must be picklable
        (module-level) when ``n_jobs > 1``.

        Any :class:`WriteTrace` argument rides the zero-copy transport: the
        parent exports it once (shared-memory segment or mmap descriptor,
        per the runner's ``transport`` policy) and workers receive a
        ~100-byte handle they resolve via the per-process attachment cache,
        instead of each task pickling the trace's arrays.  Traces the policy
        cannot carry fall back to pickling transparently; results are
        identical either way.
        """
        tasks = [tuple(args) for args in tasks]
        dispatching = (
            self.backend == "process"
            and self.n_jobs > 1
            and len(tasks) > 1
            and self.transport != "pickle"
        )
        with span("starmap", tasks=len(tasks), n_jobs=self.n_jobs, backend=self.backend):
            obs_ctx = task_context()
            if not dispatching:
                return self._collect_star(
                    self._execute(_call_star, [(func, args, obs_ctx) for args in tasks])
                )
            exporter = self._acquire_exporter()
            try:
                wrapped = [
                    (
                        func,
                        tuple(self._export_arg(arg, exporter) for arg in args),
                        obs_ctx,
                    )
                    for args in tasks
                ]
                return self._collect_star(self._execute(_call_star, wrapped))
            finally:
                if exporter is not self._exporter:
                    exporter.release()
                elif self._exporter is not None:
                    self._exporter.prune(
                        id(arg) for args in tasks for arg in args
                        if isinstance(arg, WriteTrace)
                    )

    @staticmethod
    def _collect_star(results: Iterator[Tuple[Any, Optional[ObsPayload]]]) -> List[Any]:
        """Unwrap ``_call_star`` results, absorbing worker payloads in order."""
        values = []
        for value, payload in results:
            absorb(payload)
            values.append(value)
        return values

    @staticmethod
    def _export_arg(arg: Any, exporter: TraceExporter) -> Any:
        if isinstance(arg, WriteTrace):
            descriptor = exporter.export(arg)
            if descriptor is not None:
                return _ExportedTrace(descriptor)
        return arg

    # ------------------------------------------------------------------ #
    # Execution backend
    # ------------------------------------------------------------------ #
    def _make_executor(self, max_workers: int) -> Executor:
        """Build the worker pool of the configured :attr:`backend`."""
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=max_workers)
        return ProcessPoolExecutor(max_workers=max_workers)

    def _execute(self, worker: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        """Run ``worker`` over ``items`` serially or on the worker pool.

        Always yields results in input order, which the metric reduction
        relies on for float determinism -- on both backends.  A persistent
        runner reuses one lazily created pool across calls; a one-shot
        runner builds and tears the pool down per call, as before.  Worker
        failures self-heal (see the class docstring).
        """
        if self.n_jobs == 1 or len(items) <= 1:
            for item in items:
                yield self._run_serial_item(worker, item)
            return
        yield from self._run_resilient(worker, iter(items), window=len(items))

    def _execute_windowed(
        self, worker: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Run ``worker`` over a lazily produced stream with backpressure.

        Unlike :meth:`_execute` (which materialises its items and submits
        everything upfront), this pulls from ``items`` only while fewer than
        :attr:`window` tasks are in flight and yields results in submission
        order -- the producer, the pool and the reducer stay within a bounded
        number of chunks of each other no matter how long the stream is.
        ``n_jobs=1`` consumes the stream inline, one item at a time.
        """
        if self.n_jobs == 1:
            for item in items:
                yield self._run_serial_item(worker, item)
            return
        yield from self._run_resilient(
            worker, iter(items), window=self.window or 4 * self.n_jobs
        )

    def _run_serial_item(self, worker: Callable[[Any], Any], item: Any) -> Any:
        """Execute one task inline, retrying bounded transient failures."""
        attempts = 0
        while True:
            try:
                return worker(item)
            except TransientError:
                attempts += 1
                if attempts > self.task_retries:
                    raise
                count("tasks_retried")
                item = _strip_inject(item)

    def _run_resilient(
        self, worker: Callable[[Any], Any], items: Iterator[Any], window: int
    ) -> Iterator[Any]:
        """The pooled execution engine: windowed dispatch that self-heals.

        Tasks are submitted individually (at most ``window`` in flight) and
        results are consumed strictly from the *oldest* outstanding future,
        so yields happen in submission order whatever the completion order --
        the invariant every reduction above this relies on.  Waiting only on
        the head is also what makes recovery deterministic: when the head
        fails (broken pool, watchdog timeout, transient task error) nothing
        newer has been reduced yet, so rebuilding the pool and resubmitting
        the outstanding items -- in their original order, directives
        stripped -- replays the exact same reduction.  After
        :attr:`max_pool_rebuilds` *consecutive* pool deaths the engine
        degrades to inline serial execution of everything left instead of
        failing the run.
        """
        pending: "deque[List[Any]]" = deque()  # [item, future] in submit order
        exhausted = False
        consecutive_rebuilds = 0
        executor: Optional[Executor] = None

        def pool() -> Executor:
            nonlocal executor
            if self.persistent:
                if self._executor is None:
                    self._executor = self._make_executor(self.n_jobs)
                return self._executor
            if executor is None:
                executor = self._make_executor(self.n_jobs)
            return executor

        def discard_pool() -> None:
            nonlocal executor
            if self.persistent:
                if self._executor is not None:
                    _terminate_executor(self._executor)
                    self._executor = None
            elif executor is not None:
                _terminate_executor(executor)
                executor = None

        def rebuild_and_resubmit(reason: str) -> bool:
            """Heal a dead pool; False once the rebuild budget is spent."""
            nonlocal consecutive_rebuilds
            consecutive_rebuilds += 1
            discard_pool()
            if consecutive_rebuilds > self.max_pool_rebuilds:
                return False
            count("pool_rebuilds")
            count("tasks_retried", len(pending))
            logger.warning(
                "worker pool died (%s); rebuild %d/%d, resubmitting %d task(s)",
                reason,
                consecutive_rebuilds,
                self.max_pool_rebuilds,
                len(pending),
            )
            backoff = self.retry_backoff_s * 2 ** (consecutive_rebuilds - 1)
            time.sleep(backoff * (0.5 + random.random()))
            for entry in pending:
                entry[0] = _strip_inject(entry[0])
                entry[1] = pool().submit(worker, entry[0])
            return True

        try:
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        item = next(items)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append([item, pool().submit(worker, item)])
                    observe("window_occupancy", len(pending))
                if not pending:
                    return
                if not exhausted and len(pending) >= window:
                    # The producer is ahead of the drain: the blocking wait
                    # below is the backpressure that bounds streaming memory.
                    count("backpressure_stalls")
                head = pending[0]
                future: Future = head[1]
                try:
                    result = future.result(timeout=self.task_timeout)
                except FuturesTimeoutError:
                    count("task_timeouts")
                    if not rebuild_and_resubmit(
                        f"task exceeded task_timeout={self.task_timeout:g}s"
                    ):
                        break
                except BrokenProcessPool:
                    if not rebuild_and_resubmit("broken process pool"):
                        break
                except TransientError:
                    # Only this task failed; retry it alone (bounded), still
                    # waiting on it first so the yield order is unchanged.
                    if len(head) < 3:
                        head.append(0)
                    head[2] += 1
                    if head[2] > self.task_retries:
                        raise
                    count("tasks_retried")
                    head[0] = _strip_inject(head[0])
                    head[1] = pool().submit(worker, head[0])
                else:
                    consecutive_rebuilds = 0
                    pending.popleft()
                    yield result
        finally:
            if not self.persistent and executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)

        # Rebuild budget exhausted: degrade to serial for everything left
        # rather than failing the run.  Outstanding futures were discarded
        # with the pool; their items re-run inline (directives stripped), in
        # order, so the reduction is still bit-identical.
        count("pool_degraded")
        logger.warning(
            "worker pool died %d consecutive times; degrading to serial "
            "execution for the remaining %d+ task(s)",
            consecutive_rebuilds,
            len(pending),
        )
        for entry in pending:
            yield self._run_serial_item(worker, _strip_inject(entry[0]))
        pending.clear()
        for item in items:
            yield self._run_serial_item(worker, item)


# ---------------------------------------------------------------------- #
# Shared persistent runners
# ---------------------------------------------------------------------- #
_SHARED_RUNNERS: Dict[Tuple[int, str], ParallelRunner] = {}


def shared_runner(
    n_jobs: int = 1,
    backend: str = "process",
    results_store: Optional["ResultStore"] = None,
    task_timeout: Optional[float] = None,
) -> ParallelRunner:
    """The process-wide persistent runner for ``n_jobs`` workers.

    Experiment drivers and sweep helpers route their fan-outs through this
    so that one executor is built per ``(worker count, backend)`` and reused
    across every ``run()`` call of the session, instead of paying pool
    start-up per sweep.  Pools are torn down at interpreter exit (or
    explicitly via :func:`shutdown_shared_runners`).

    ``results_store`` and ``task_timeout`` are re-bound on *every*
    acquisition (including to ``None``): the pool is shared session state,
    but the memoisation and watchdog policies are per caller, and a value
    left attached by one driver must not silently apply to the next.
    """
    jobs = resolve_n_jobs(n_jobs)
    key = (jobs, backend)
    runner = _SHARED_RUNNERS.get(key)
    if runner is None:
        runner = ParallelRunner(jobs, persistent=True, backend=backend)
        _SHARED_RUNNERS[key] = runner
    runner.results_store = results_store
    runner.task_timeout = task_timeout
    return runner


def shutdown_shared_runners() -> None:
    """Close every pool created by :func:`shared_runner` (idempotent)."""
    for runner in _SHARED_RUNNERS.values():
        runner.close()
    _SHARED_RUNNERS.clear()


atexit.register(shutdown_shared_runners)


# ---------------------------------------------------------------------- #
# Convenience wrappers
# ---------------------------------------------------------------------- #
def parallel_map_metrics(
    units: Sequence[WorkUnit], n_jobs: int = 1
) -> List[WriteMetrics]:
    """One-shot :meth:`ParallelRunner.map` with a throwaway runner."""
    return ParallelRunner(n_jobs).map(units)


def parallel_reduce_metrics(
    units: Sequence[WorkUnit], n_jobs: int = 1
) -> Dict[Hashable, WriteMetrics]:
    """One-shot :meth:`ParallelRunner.run` with a throwaway runner."""
    return ParallelRunner(n_jobs).run(units)
