"""Parallel trace-evaluation engine.

The paper's headline results (Figures 8-14) sweep many encoder configurations
over many per-benchmark write traces.  Every (encoder, trace, sweep-point)
combination is independent, so the sweep is embarrassingly parallel; this
module provides the harness that exploits that.

:class:`ParallelRunner` fans *work units* -- an encoder evaluated on a trace
under an :class:`~repro.core.config.EvaluationConfig` -- out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each unit is further split
into its evaluation chunks (the same ``config.chunk_size`` chunks the serial
runner uses), which become the individual executor tasks, so even a single
long trace spreads across all workers.

Determinism is a hard guarantee, not a best effort:

* chunk results are reduced with :meth:`WriteMetrics.merge
  <repro.core.metrics.WriteMetrics.merge>` in (unit, chunk) submission order,
  so floating-point accumulation is identical for any worker count;
* Monte-Carlo disturbance sampling draws from per-chunk
  :class:`numpy.random.SeedSequence` streams spawned from
  ``(config.seed, unit_index)`` (see
  :func:`~repro.evaluation.runner.chunk_streams`), so sampled error counts do
  not depend on scheduling either.

``n_jobs=1`` (the default) executes the exact serial path in-process -- no
executor, no pickling -- which makes it both the fallback and the reference
the property tests compare the parallel path against bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..coding.base import WriteEncoder
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.errors import ConfigurationError
from ..core.metrics import WriteMetrics
from ..workloads.trace import WriteTrace
from .runner import chunk_streams, metrics_from_encoded, n_chunks_of


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``-1`` all mean "use every available core" (the
    joblib convention); positive values are taken literally.
    """
    if n_jobs is None or n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ConfigurationError(f"n_jobs must be positive, 0, -1 or None: {n_jobs}")
    return int(n_jobs)


@dataclass(frozen=True)
class WorkUnit:
    """One independent piece of sweep work: a scheme evaluated on a trace.

    ``key`` labels the unit for reduction -- units sharing a key have their
    metrics merged (in submission order) by :meth:`ParallelRunner.run`.
    Typical keys: a scheme name, a benchmark name, a granularity, or a
    ``(sweep-point, role)`` tuple.
    """

    key: Hashable
    encoder: WriteEncoder
    trace: WriteTrace
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL


@dataclass(frozen=True)
class _Shard:
    """One chunk of one work unit -- the granularity of executor dispatch."""

    unit_index: int
    chunk_index: int
    encoder: WriteEncoder
    chunk: WriteTrace
    disturbance_model: DisturbanceModel
    stream: Optional[np.random.SeedSequence]


def _evaluate_shard(shard: _Shard) -> Tuple[int, int, WriteMetrics]:
    """Evaluate one shard; runs in a worker process (or inline when serial)."""
    rng = np.random.default_rng(shard.stream) if shard.stream is not None else None
    encoded = shard.encoder.encode_batch(shard.chunk.new, shard.chunk.old)
    metrics = metrics_from_encoded(encoded, shard.encoder, shard.disturbance_model, rng)
    return shard.unit_index, shard.chunk_index, metrics


def _call_star(task: Tuple[Callable[..., Any], Tuple]) -> Any:
    """Apply ``func(*args)``; module-level so it pickles into workers."""
    func, args = task
    return func(*args)


class ParallelRunner:
    """Fan (encoder x trace x sweep-point) work units out over worker processes.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (default) runs the exact serial path in the
        current process; ``None``, ``0`` or ``-1`` use every available core.
    executor_chunksize:
        Tasks handed to each worker per round-trip (``chunksize`` of
        :meth:`~concurrent.futures.Executor.map`).  Defaults to a heuristic
        that keeps roughly four batches in flight per worker.

    Results are bit-identical for every ``n_jobs`` value -- see the module
    docstring for how seeding and reduction order guarantee this.
    """

    def __init__(self, n_jobs: int = 1, executor_chunksize: Optional[int] = None):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.executor_chunksize = executor_chunksize

    # ------------------------------------------------------------------ #
    # Work-unit evaluation
    # ------------------------------------------------------------------ #
    def _shards(self, units: Sequence[WorkUnit]) -> Iterator[_Shard]:
        for unit_index, unit in enumerate(units):
            streams = chunk_streams(
                unit.config, n_chunks_of(unit.trace, unit.config), unit_index
            )
            chunks = unit.trace.chunks(unit.config.chunk_size)
            for chunk_index, (chunk, stream) in enumerate(zip(chunks, streams)):
                yield _Shard(
                    unit_index=unit_index,
                    chunk_index=chunk_index,
                    encoder=unit.encoder,
                    chunk=chunk,
                    disturbance_model=unit.disturbance_model,
                    stream=stream,
                )

    def map(self, units: Sequence[WorkUnit]) -> List[WriteMetrics]:
        """Evaluate every unit and return one :class:`WriteMetrics` per unit.

        ``map(units)[i]`` equals
        ``evaluate_trace(units[i].encoder, units[i].trace, ..., unit_index=i)``
        exactly, for any ``n_jobs``.
        """
        units = list(units)
        shards = list(self._shards(units))
        per_unit = [WriteMetrics() for _ in units]
        for unit_index, _, metrics in self._execute(_evaluate_shard, shards):
            per_unit[unit_index].merge(metrics)
        return per_unit

    def run(self, units: Sequence[WorkUnit]) -> Dict[Hashable, WriteMetrics]:
        """Evaluate every unit and reduce the results by ``unit.key``.

        Keys appear in first-submission order; units sharing a key are merged
        in submission order (so e.g. per-granularity totals accumulate their
        traces exactly like the serial sweep loop did).
        """
        units = list(units)
        reduced: Dict[Hashable, WriteMetrics] = {}
        for unit, metrics in zip(units, self.map(units)):
            reduced.setdefault(unit.key, WriteMetrics()).merge(metrics)
        return reduced

    # ------------------------------------------------------------------ #
    # Generic fan-out
    # ------------------------------------------------------------------ #
    def starmap(self, func: Callable[..., Any], tasks: Iterable[Tuple]) -> List[Any]:
        """Apply ``func(*args)`` to every args-tuple, preserving order.

        Used by sweep helpers whose work is not metric-shaped (e.g. the
        compression-coverage study).  ``func`` must be picklable
        (module-level) when ``n_jobs > 1``.
        """
        tasks = [(func, tuple(args)) for args in tasks]
        return list(self._execute(_call_star, tasks))

    # ------------------------------------------------------------------ #
    # Execution backend
    # ------------------------------------------------------------------ #
    def _execute(self, worker: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        """Run ``worker`` over ``items`` serially or on the process pool.

        Always yields results in input order (``Executor.map`` preserves it),
        which the metric reduction relies on for float determinism.
        """
        if self.n_jobs == 1 or len(items) <= 1:
            for item in items:
                yield worker(item)
            return
        max_workers = min(self.n_jobs, len(items))
        chunksize = self.executor_chunksize or max(1, len(items) // (max_workers * 4))
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            yield from executor.map(worker, items, chunksize=chunksize)


# ---------------------------------------------------------------------- #
# Convenience wrappers
# ---------------------------------------------------------------------- #
def parallel_map_metrics(
    units: Sequence[WorkUnit], n_jobs: int = 1
) -> List[WriteMetrics]:
    """One-shot :meth:`ParallelRunner.map` with a throwaway runner."""
    return ParallelRunner(n_jobs).map(units)


def parallel_reduce_metrics(
    units: Sequence[WorkUnit], n_jobs: int = 1
) -> Dict[Hashable, WriteMetrics]:
    """One-shot :meth:`ParallelRunner.run` with a throwaway runner."""
    return ParallelRunner(n_jobs).run(units)
