"""Trace-driven evaluation runner.

The runner mirrors the paper's simulator: for every write request of a trace
it asks a scheme to encode the new data against the (reconstructed or tracked)
stored states and accumulates the three per-request metrics -- write energy
(split into data and auxiliary components), updated cells, and expected
write-disturbance errors.  Traces are processed in fixed-size chunks so that
the vectorised encoders stay within a bounded memory footprint.

Disturbance sampling is deterministic *per chunk*: every chunk draws from its
own :class:`numpy.random.SeedSequence` stream derived from
``(config.seed, unit_index, chunk_index)``, so results do not depend on how
chunks are scheduled.  This is what lets the parallel engine in
:mod:`repro.evaluation.parallel` produce bit-identical results for any worker
count -- see :func:`chunk_streams`.

The multi-scheme helpers (:func:`evaluate_schemes`,
:func:`evaluate_benchmarks`) accept an ``n_jobs`` argument and fan their work
units out over the parallel engine; ``n_jobs=1`` (the default) keeps the
exact serial path.
"""

from __future__ import annotations

import tracemalloc
from contextlib import nullcontext
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..coding.base import EncodedBatch, WriteEncoder
from ..compression.backend import get_backend, kernel_timer, use_array_backend
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.metrics import WriteMetrics
from ..obs import count, gauge, is_active, peak_rss_bytes, span
from ..workloads.trace import WriteTrace

if TYPE_CHECKING:  # pragma: no cover - typing only (serve layers above this)
    from ..serve.results import ResultStore


def metrics_from_encoded(
    encoded: EncodedBatch,
    encoder: WriteEncoder,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    rng: Optional[np.random.Generator] = None,
) -> WriteMetrics:
    """Derive the paper's per-request metrics from an encoded batch.

    Parameters
    ----------
    encoded:
        Result of :meth:`WriteEncoder.encode_batch` (or the stateful variant).
    encoder:
        The encoder that produced the batch (supplies the energy model).
    disturbance_model:
        Disturbance-rate model; expected-value counting is used unless ``rng``
        is given, in which case errors are Monte-Carlo sampled.
    """
    changed = encoded.changed
    energy = encoder.energy_model.cell_write_energy(encoded.states, changed)
    aux = encoded.aux_mask
    # One masked-multiply pass replaces the historical pair of np.where
    # full-array scans.  Bit-identical: ``energy * aux`` equals
    # ``np.where(aux, energy, 0.0)`` elementwise (bool -> 1.0/0.0, energies
    # are finite and non-negative), and ``energy - energy*aux`` equals
    # ``np.where(aux, 0.0, energy)`` elementwise (e - e == +0.0 exactly);
    # identical elementwise values in identically shaped C-order arrays sum
    # through the same pairwise tree to the same bits.
    aux_cells = energy * aux
    aux_energy = float(aux_cells.sum())
    np.subtract(energy, aux_cells, out=aux_cells)
    data_energy = float(aux_cells.sum())
    # Cell counts are exact integers, so any summation grouping matches the
    # historical np.where(...).sum() values bit for bit.
    changed_aux = changed & aux
    updated_aux = float(changed_aux.sum())
    updated_data = float((changed & ~aux).sum())
    if rng is None:
        disturbance = float(
            disturbance_model.expected_errors(encoded.old_states, changed).sum()
        )
    else:
        disturbance = float(
            disturbance_model.sample_errors(encoded.old_states, changed, rng).sum()
        )
    return WriteMetrics(
        requests=int(encoded.states.shape[0]),
        data_energy_pj=data_energy,
        aux_energy_pj=aux_energy,
        updated_data_cells=updated_data,
        updated_aux_cells=updated_aux,
        disturbance_errors=disturbance,
        compressed_lines=int(encoded.compressed.sum()),
        encoded_lines=int(encoded.encoded.sum()),
    )


def n_chunks_of(trace: WriteTrace, config: EvaluationConfig) -> int:
    """Number of chunks ``trace`` is split into under ``config.chunk_size``."""
    return -(-len(trace) // config.chunk_size) if len(trace) else 0


def chunk_group_size(config: EvaluationConfig) -> int:
    """Chunks coalesced per encoder super-batch (1 = the per-chunk path).

    ``config.superbatch_size`` names a *line* target; the accumulator rounds
    it up to whole chunks so group boundaries land exactly on the chunk grid
    and the per-chunk RNG streams / metric windows stay well defined.
    """
    if config.superbatch_size is None:
        return 1
    return max(1, -(-config.superbatch_size // config.chunk_size))


def array_backend_scope(config: EvaluationConfig):
    """Context manager activating ``config.array_backend`` (no-op when unset)."""
    if config.array_backend is None:
        return nullcontext()
    return use_array_backend(config.array_backend)


def fused_tile_size(tile_lines: Optional[int], chunk_size: int) -> Optional[int]:
    """Normalise a ``fused_tile_lines`` request to whole chunk windows.

    Returns ``None`` when tiling is disabled (``None`` or non-positive);
    otherwise the requested line count rounded *up* to a multiple of
    ``chunk_size``, so every chunk window -- and therefore every per-chunk
    RNG stream -- lies entirely inside one tile.
    """
    if tile_lines is None or tile_lines <= 0:
        return None
    return max(1, -(-tile_lines // chunk_size)) * chunk_size


def _record_peak_memory() -> None:
    """Gauge this process's peak memory (no-op unless observing).

    ``peak_rss_bytes`` max-merges across worker processes into the run-wide
    peak; the tracemalloc gauge only exists when the caller (e.g. the
    streaming-ingest bench) already traces allocations.
    """
    if not is_active():
        return
    rss = peak_rss_bytes()
    if rss is not None:
        gauge("peak_rss_bytes", rss)
    if tracemalloc.is_tracing():
        _, peak = tracemalloc.get_traced_memory()
        gauge("tracemalloc_peak_bytes", float(peak))


def encode_metrics_batch(
    encoder: WriteEncoder,
    group: WriteTrace,
    streams: Sequence[Optional[np.random.SeedSequence]],
    chunk_size: int,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    tile_lines: int = 8192,
) -> Iterator[WriteMetrics]:
    """Fused encode+metrics: walk ``group`` in tiles, never materialising it.

    The tiled candidate-evaluation path: each tile of ``tile_lines`` lines
    (rounded up to whole chunk windows) is encoded on its own, its
    per-chunk-window metrics are accumulated in the same pass, and its
    states are dropped before the next tile is touched -- so peak memory is
    bounded by the tile size while the full-batch ``EncodedBatch`` (and the
    per-candidate sweep temporaries inside the encoders, already bounded to
    one candidate by :func:`repro.coding.base.block_energy_costs`) never
    exist at super-batch scale.

    Bit-identity with the materialising path follows from three facts: the
    opted-in encoders (``WriteEncoder.supports_fused_metrics``) encode
    strictly per line, so a tile's rows equal the same rows of a full-batch
    encode; tiles are aligned to chunk windows, so window ``i`` still spans
    one contiguous same-shape slice and draws from ``streams[i]`` exactly as
    before; and the metric reduction is the shared
    :func:`metrics_from_encoded` either way.
    """
    tile = fused_tile_size(tile_lines, chunk_size)
    if tile is None:
        raise ValueError("encode_metrics_batch needs a positive tile_lines")
    backend_name = get_backend().name
    n_tiles = -(-len(group) // tile) if len(group) else 0
    with span(
        "encode_metrics_batch", scheme=encoder.name, lines=len(group), tiles=n_tiles
    ):
        for index, stream in enumerate(streams):
            start = index * chunk_size
            if start % tile == 0:
                tile_stop = min(len(group), start + tile)
                with kernel_timer(backend_name, "fused_tile"):
                    tile_trace = group[start:tile_stop]
                    encoded = encoder.encode_batch(tile_trace.new, tile_trace.old)
                count("lines_encoded", len(encoded), scheme=encoder.name)
            local = start % tile
            window = encoded.window(local, min(len(encoded), local + chunk_size))
            rng = np.random.default_rng(stream) if stream is not None else None
            yield metrics_from_encoded(window, encoder, disturbance_model, rng)
    _record_peak_memory()


def evaluate_chunk_group(
    encoder: WriteEncoder,
    group: WriteTrace,
    streams: Sequence[Optional[np.random.SeedSequence]],
    chunk_size: int,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    tile_lines: Optional[int] = None,
) -> Iterator[WriteMetrics]:
    """Encode a coalesced chunk group once; yield per-chunk-window metrics.

    This is the super-batch accumulator's unit of work, shared by the serial
    runner and the parallel engine.  The whole group feeds *one*
    ``encode_batch`` call (so compiled/GPU array backends see >=256k-line
    batches), but the metric reduction still happens per original
    ``chunk_size`` window -- window ``i`` of the group uses ``streams[i]``,
    the very stream chunk ``first + i`` draws on the per-chunk path, and a
    window's arrays have the same shape and layout a standalone chunk's
    would, so every float accumulates in the same order.  That is what keeps
    super-batched results bit-identical to the per-chunk path.

    When ``tile_lines`` is set, the group is larger than one tile, and the
    encoder opts in via ``supports_fused_metrics``, the call is routed
    through the fused tiled path (:func:`encode_metrics_batch`) instead --
    metrics are bit-identical, only the peak memory changes.  The
    materialising path below stays both the fallback (encoders without the
    flag, tiling disabled, group already tile-sized) and the reference
    oracle the fused property tests compare against.
    """
    tile = fused_tile_size(tile_lines, chunk_size)
    if (
        tile is not None
        and encoder.supports_fused_metrics
        and len(group) > tile
    ):
        yield from encode_metrics_batch(
            encoder, group, streams, chunk_size, disturbance_model, tile
        )
        return
    with span("encode_batch", scheme=encoder.name, lines=len(group)):
        encoded = encoder.encode_batch(group.new, group.old)
    count("lines_encoded", len(group), scheme=encoder.name)
    for index, stream in enumerate(streams):
        start = index * chunk_size
        window = encoded.window(start, min(len(encoded), start + chunk_size))
        rng = np.random.default_rng(stream) if stream is not None else None
        yield metrics_from_encoded(window, encoder, disturbance_model, rng)
    _record_peak_memory()


def chunk_stream(
    config: EvaluationConfig, unit_index: int, chunk_index: int
) -> Optional[np.random.SeedSequence]:
    """RNG stream of one evaluation chunk (Monte-Carlo disturbance sampling).

    Stream ``c`` of work unit ``u`` is the :class:`numpy.random.SeedSequence`
    with entropy ``config.seed`` and spawn key ``(u, c)`` -- exactly what
    ``SeedSequence(config.seed, spawn_key=(u,)).spawn(...)`` would hand out,
    but computed lazily, so streaming consumers that do not know the chunk
    count upfront draw the very same streams as the materialised path.
    Returns ``None`` when ``config.sample_disturbance`` is off.  A chunk's
    random draws depend only on the evaluation seed and the chunk's logical
    position -- never on which process evaluates it or in which order; the
    parallel engine relies on this to stay bit-identical to the serial path
    for any ``n_jobs``.
    """
    if not config.sample_disturbance:
        return None
    return np.random.SeedSequence(
        entropy=config.seed, spawn_key=(unit_index, chunk_index)
    )


def chunk_streams(
    config: EvaluationConfig, n_chunks: int, unit_index: int = 0
) -> List[Optional[np.random.SeedSequence]]:
    """Per-chunk RNG streams for a known chunk count (see :func:`chunk_stream`)."""
    return [chunk_stream(config, unit_index, c) for c in range(max(0, n_chunks))]


def evaluate_trace(
    encoder: WriteEncoder,
    trace,
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    unit_index: int = 0,
) -> WriteMetrics:
    """Evaluate one scheme on one write trace and return the aggregate metrics.

    ``trace`` is a :class:`~repro.workloads.trace.WriteTrace` or any
    :class:`~repro.workloads.trace.ChunkSource` -- the loop only ever holds
    one chunk group (one chunk unless ``config.superbatch_size`` coalesces
    several), so evaluating a streaming source keeps memory bounded
    regardless of the trace length.  ``unit_index`` selects the
    disturbance-sampling stream when the trace is one of several work units
    evaluated together (see :mod:`.parallel`); the default of 0 matches a
    standalone run.
    """
    total = WriteMetrics()
    group_chunks = chunk_group_size(config)
    with array_backend_scope(config):
        buffer: List[WriteTrace] = []
        first_index = 0

        def flush() -> None:
            group = buffer[0] if len(buffer) == 1 else WriteTrace.concat(buffer)
            streams = [
                chunk_stream(config, unit_index, first_index + offset)
                for offset in range(len(buffer))
            ]
            for metrics in evaluate_chunk_group(
                encoder,
                group,
                streams,
                config.chunk_size,
                disturbance_model,
                tile_lines=config.fused_tile_lines,
            ):
                total.merge(metrics)

        for chunk_index, chunk in enumerate(trace.chunks(config.chunk_size)):
            if not buffer:
                first_index = chunk_index
            buffer.append(chunk)
            if len(buffer) >= group_chunks:
                flush()
                buffer = []
        if buffer:
            flush()
    return total


def evaluate_schemes(
    encoders: Sequence[WriteEncoder],
    trace: WriteTrace,
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    n_jobs: int = 1,
    runner: Optional["ParallelRunner"] = None,
    backend: str = "process",
    results_store: Optional["ResultStore"] = None,
    task_timeout: Optional[float] = None,
) -> Dict[str, WriteMetrics]:
    """Evaluate several schemes on the same trace; keyed by scheme name.

    If two encoders share a name, the last one wins (dict semantics), matching
    the historical behaviour.  Passing ``runner`` reuses an existing (e.g.
    persistent) :class:`~repro.evaluation.parallel.ParallelRunner` instead of
    building a throwaway pool; otherwise ``backend`` selects the throwaway
    pool's executor kind (results are bit-identical either way).  A
    ``results_store`` memoises per-unit metrics across calls and processes
    (store hits are bit-identical to fresh computation); when given it is
    bound to whichever runner executes the call.
    """
    from .parallel import ParallelRunner, WorkUnit

    units = [
        WorkUnit(encoder.name, encoder, trace, config, disturbance_model)
        for encoder in encoders
    ]
    engine = runner or ParallelRunner(n_jobs, backend=backend)
    if results_store is not None:
        engine.results_store = results_store
    if task_timeout is not None:
        engine.task_timeout = task_timeout
    per_unit = engine.map(units)
    return {encoder.name: metrics for encoder, metrics in zip(encoders, per_unit)}


def evaluate_benchmarks(
    encoder: WriteEncoder,
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    n_jobs: int = 1,
    runner: Optional["ParallelRunner"] = None,
    backend: str = "process",
    results_store: Optional["ResultStore"] = None,
    task_timeout: Optional[float] = None,
) -> Dict[str, WriteMetrics]:
    """Evaluate one scheme across a set of per-benchmark traces."""
    from .parallel import ParallelRunner, WorkUnit

    units = [
        WorkUnit(name, encoder, trace, config, disturbance_model)
        for name, trace in traces.items()
    ]
    engine = runner or ParallelRunner(n_jobs, backend=backend)
    if results_store is not None:
        engine.results_store = results_store
    if task_timeout is not None:
        engine.task_timeout = task_timeout
    return engine.run(units)


def average_metrics(per_benchmark: Mapping[str, WriteMetrics]) -> WriteMetrics:
    """Combine per-benchmark metrics into a single average (Figure 8's 'Ave.')."""
    return WriteMetrics.combine(per_benchmark.values())
