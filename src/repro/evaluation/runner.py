"""Trace-driven evaluation runner.

The runner mirrors the paper's simulator: for every write request of a trace
it asks a scheme to encode the new data against the (reconstructed or tracked)
stored states and accumulates the three per-request metrics -- write energy
(split into data and auxiliary components), updated cells, and expected
write-disturbance errors.  Traces are processed in fixed-size chunks so that
the vectorised encoders stay within a bounded memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..coding.base import EncodedBatch, WriteEncoder
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.metrics import WriteMetrics
from ..workloads.trace import WriteTrace


def metrics_from_encoded(
    encoded: EncodedBatch,
    encoder: WriteEncoder,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    rng: Optional[np.random.Generator] = None,
) -> WriteMetrics:
    """Derive the paper's per-request metrics from an encoded batch.

    Parameters
    ----------
    encoded:
        Result of :meth:`WriteEncoder.encode_batch` (or the stateful variant).
    encoder:
        The encoder that produced the batch (supplies the energy model).
    disturbance_model:
        Disturbance-rate model; expected-value counting is used unless ``rng``
        is given, in which case errors are Monte-Carlo sampled.
    """
    changed = encoded.changed
    energy = encoder.energy_model.cell_write_energy(encoded.states, changed)
    aux = encoded.aux_mask
    data_energy = float(np.where(aux, 0.0, energy).sum())
    aux_energy = float(np.where(aux, energy, 0.0).sum())
    updated_data = float(np.where(aux, False, changed).sum())
    updated_aux = float(np.where(aux, changed, False).sum())
    if rng is None:
        disturbance = float(
            disturbance_model.expected_errors(encoded.old_states, changed).sum()
        )
    else:
        disturbance = float(
            disturbance_model.sample_errors(encoded.old_states, changed, rng).sum()
        )
    return WriteMetrics(
        requests=int(encoded.states.shape[0]),
        data_energy_pj=data_energy,
        aux_energy_pj=aux_energy,
        updated_data_cells=updated_data,
        updated_aux_cells=updated_aux,
        disturbance_errors=disturbance,
        compressed_lines=int(encoded.compressed.sum()),
        encoded_lines=int(encoded.encoded.sum()),
    )


def evaluate_trace(
    encoder: WriteEncoder,
    trace: WriteTrace,
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
) -> WriteMetrics:
    """Evaluate one scheme on one write trace and return the aggregate metrics."""
    total = WriteMetrics()
    rng = np.random.default_rng(config.seed) if config.sample_disturbance else None
    for chunk in trace.chunks(config.chunk_size):
        encoded = encoder.encode_batch(chunk.new, chunk.old)
        total.merge(metrics_from_encoded(encoded, encoder, disturbance_model, rng))
    return total


def evaluate_schemes(
    encoders: Sequence[WriteEncoder],
    trace: WriteTrace,
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
) -> Dict[str, WriteMetrics]:
    """Evaluate several schemes on the same trace; keyed by scheme name."""
    return {
        encoder.name: evaluate_trace(encoder, trace, config, disturbance_model)
        for encoder in encoders
    }


def evaluate_benchmarks(
    encoder: WriteEncoder,
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
) -> Dict[str, WriteMetrics]:
    """Evaluate one scheme across a set of per-benchmark traces."""
    return {
        name: evaluate_trace(encoder, trace, config, disturbance_model)
        for name, trace in traces.items()
    }


def average_metrics(per_benchmark: Mapping[str, WriteMetrics]) -> WriteMetrics:
    """Combine per-benchmark metrics into a single average (Figure 8's 'Ave.')."""
    return WriteMetrics.combine(per_benchmark.values())
