"""Parameter sweeps shared by the figure-reproduction experiments.

Three sweep helpers cover the paper's sensitivity studies:

* :func:`granularity_sweep` -- evaluate one scheme family across data-block
  granularities (Figures 1, 2, 3, 5, 11, 12, 13);
* :func:`energy_level_sweep` -- repeat an evaluation under the four
  intermediate-state energy configurations of Figure 14;
* :func:`compression_coverage` -- fraction of compressible lines per
  benchmark for WLC (k = 4..9), COC and FPC+BDI (Figure 4).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..coding.base import WriteEncoder
from ..compression.coc import COCCompressor
from ..compression.fpc_bdi import DIN_COMPRESSION_BUDGET_BITS, FPCBDICompressor
from ..compression.wlc import WLCCompressor
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel, figure14_energy_models
from ..core.metrics import WriteMetrics
from ..core.symbols import BITS_PER_LINE
from ..workloads.trace import WriteTrace
from .runner import evaluate_trace

#: Budget (bits) a COC-compressed line must fit to count as "compressed" in Figure 4.
COC_COVERAGE_BUDGET_BITS = 448

EncoderFactory = Callable[[int, EnergyModel], WriteEncoder]


def granularity_sweep(
    factory: EncoderFactory,
    granularities: Sequence[int],
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> Dict[int, WriteMetrics]:
    """Evaluate ``factory(granularity)`` on every trace for each granularity.

    Returns the per-granularity metrics aggregated across all traces (the
    paper reports the SPEC+PARSEC average).
    """
    results: Dict[int, WriteMetrics] = {}
    for granularity in granularities:
        encoder = factory(granularity, energy_model)
        total = WriteMetrics()
        for trace in traces.values():
            total.merge(evaluate_trace(encoder, trace, config))
        results[granularity] = total
    return results


def energy_level_sweep(
    factory: Callable[[EnergyModel], WriteEncoder],
    baseline_factory: Callable[[EnergyModel], WriteEncoder],
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    energy_models: Optional[Sequence[EnergyModel]] = None,
) -> Dict[Tuple[float, float], Dict[str, float]]:
    """Figure 14 sweep: scheme-vs-baseline energy improvement per energy level.

    Returns a mapping from ``(S3 SET energy, S4 SET energy)`` to a dictionary
    with the baseline energy, the scheme energy and the percent improvement.
    """
    energy_models = list(energy_models or figure14_energy_models())
    results: Dict[Tuple[float, float], Dict[str, float]] = {}
    for model in energy_models:
        scheme = factory(model)
        baseline = baseline_factory(model)
        scheme_total = WriteMetrics()
        baseline_total = WriteMetrics()
        for trace in traces.values():
            scheme_total.merge(evaluate_trace(scheme, trace, config))
            baseline_total.merge(evaluate_trace(baseline, trace, config))
        improvement = 0.0
        if baseline_total.avg_energy_pj:
            improvement = 100.0 * (
                baseline_total.avg_energy_pj - scheme_total.avg_energy_pj
            ) / baseline_total.avg_energy_pj
        key = (model.set_energy_pj[2], model.set_energy_pj[3])
        results[key] = {
            "baseline_energy_pj": baseline_total.avg_energy_pj,
            "scheme_energy_pj": scheme_total.avg_energy_pj,
            "improvement_pct": improvement,
        }
    return results


def compression_coverage(
    traces: Mapping[str, WriteTrace],
    wlc_k_values: Sequence[int] = (4, 5, 6, 7, 8, 9),
    coc_budget_bits: int = COC_COVERAGE_BUDGET_BITS,
    din_budget_bits: int = DIN_COMPRESSION_BUDGET_BITS,
) -> Dict[str, Dict[str, float]]:
    """Figure 4: fraction of compressed memory lines per benchmark and method.

    Coverage is measured on the new-data side of each trace.  WLC counts a
    line as compressed when all words share the top ``k`` bits; COC when the
    bank compresses it within ``coc_budget_bits``; FPC+BDI when it fits the
    DIN budget.
    """
    coc = COCCompressor()
    fpc_bdi = FPCBDICompressor()
    results: Dict[str, Dict[str, float]] = {}
    for name, trace in traces.items():
        lines = trace.new
        row: Dict[str, float] = {}
        for k in wlc_k_values:
            row[f"{k}-MSBs"] = 100.0 * WLCCompressor(k=k).coverage(lines, BITS_PER_LINE - 1)
        row["COC"] = 100.0 * coc.coverage(lines, coc_budget_bits)
        row["FPC+BDI"] = 100.0 * fpc_bdi.coverage(lines, din_budget_bits)
        results[name] = row
    if results:
        methods = next(iter(results.values())).keys()
        results["ave."] = {
            method: float(np.mean([row[method] for row in results.values() if method in row]))
            for method in list(methods)
        }
    return results
