"""Parameter sweeps shared by the figure-reproduction experiments.

Three sweep helpers cover the paper's sensitivity studies:

* :func:`granularity_sweep` -- evaluate one scheme family across data-block
  granularities (Figures 1, 2, 3, 5, 11, 12, 13);
* :func:`energy_level_sweep` -- repeat an evaluation under the four
  intermediate-state energy configurations of Figure 14;
* :func:`compression_coverage` -- fraction of compressible lines per
  benchmark for WLC (k = 4..9), COC and FPC+BDI (Figure 4).

All three run on the parallel evaluation engine
(:mod:`repro.evaluation.parallel`): every (sweep-point x trace) combination
becomes an independent work unit, so an 8-point sweep over 14 traces fans out
112 units across the worker pool.  ``n_jobs=1`` (the default) keeps the exact
serial path and every ``n_jobs`` value produces bit-identical metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..coding.base import WriteEncoder
from ..compression.base import Compressor
from ..compression.coc import COCCompressor
from ..compression.fpc_bdi import DIN_COMPRESSION_BUDGET_BITS, FPCBDICompressor
from ..compression.wlc import WLCCompressor
from ..core.config import DEFAULT_EVALUATION_CONFIG, EvaluationConfig
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel, figure14_energy_models
from ..core.metrics import WriteMetrics
from ..core.symbols import BITS_PER_LINE
from ..workloads.trace import WriteTrace
from .parallel import ParallelRunner, WorkUnit

#: Budget (bits) a COC-compressed line must fit to count as "compressed" in Figure 4.
COC_COVERAGE_BUDGET_BITS = 448

EncoderFactory = Callable[[int, EnergyModel], WriteEncoder]


def granularity_sweep(
    factory: EncoderFactory,
    granularities: Sequence[int],
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    n_jobs: int = 1,
    runner: Optional[ParallelRunner] = None,
) -> Dict[int, WriteMetrics]:
    """Evaluate ``factory(granularity)`` on every trace for each granularity.

    Returns the per-granularity metrics aggregated across all traces (the
    paper reports the SPEC+PARSEC average).  With ``n_jobs > 1`` the full
    (granularity x trace) cross-product is evaluated concurrently.
    """
    units: List[WorkUnit] = []
    for granularity in granularities:
        encoder = factory(granularity, energy_model)
        for trace in traces.values():
            units.append(WorkUnit(granularity, encoder, trace, config))
    reduced = (runner or ParallelRunner(n_jobs)).run(units)
    return {g: reduced.get(g, WriteMetrics()) for g in granularities}


def energy_level_sweep(
    factory: Callable[[EnergyModel], WriteEncoder],
    baseline_factory: Callable[[EnergyModel], WriteEncoder],
    traces: Mapping[str, WriteTrace],
    config: EvaluationConfig = DEFAULT_EVALUATION_CONFIG,
    energy_models: Optional[Sequence[EnergyModel]] = None,
    n_jobs: int = 1,
    runner: Optional[ParallelRunner] = None,
) -> Dict[Tuple[float, float], Dict[str, float]]:
    """Figure 14 sweep: scheme-vs-baseline energy improvement per energy level.

    Returns a mapping from ``(S3 SET energy, S4 SET energy)`` to a dictionary
    with the baseline energy, the scheme energy and the percent improvement.
    """
    energy_models = list(energy_models or figure14_energy_models())
    units: List[WorkUnit] = []
    for index, model in enumerate(energy_models):
        scheme = factory(model)
        baseline = baseline_factory(model)
        for trace in traces.values():
            units.append(WorkUnit((index, "scheme"), scheme, trace, config))
            units.append(WorkUnit((index, "baseline"), baseline, trace, config))
    totals = (runner or ParallelRunner(n_jobs)).run(units)

    results: Dict[Tuple[float, float], Dict[str, float]] = {}
    for index, model in enumerate(energy_models):
        scheme_total = totals.get((index, "scheme"), WriteMetrics())
        baseline_total = totals.get((index, "baseline"), WriteMetrics())
        improvement = 0.0
        if baseline_total.avg_energy_pj:
            improvement = 100.0 * (
                baseline_total.avg_energy_pj - scheme_total.avg_energy_pj
            ) / baseline_total.avg_energy_pj
        key = (model.set_energy_pj[2], model.set_energy_pj[3])
        results[key] = {
            "baseline_energy_pj": baseline_total.avg_energy_pj,
            "scheme_energy_pj": scheme_total.avg_energy_pj,
            "improvement_pct": improvement,
        }
    return results


def _coverage_cell(compressor: Compressor, lines, budget_bits: int) -> float:
    """Coverage of one (compressor, benchmark) cell as a percentage.

    ``lines`` is a :class:`LineBatch` or a whole :class:`WriteTrace` -- the
    latter when the parallel engine's ``starmap`` ships the trace by
    zero-copy transport descriptor instead of pickling arrays into every
    task; coverage is measured on the new-data side either way.
    """
    if isinstance(lines, WriteTrace):
        lines = lines.new
    return 100.0 * compressor.coverage(lines, budget_bits)


def compression_coverage(
    traces: Mapping[str, WriteTrace],
    wlc_k_values: Sequence[int] = (4, 5, 6, 7, 8, 9),
    coc_budget_bits: int = COC_COVERAGE_BUDGET_BITS,
    din_budget_bits: int = DIN_COMPRESSION_BUDGET_BITS,
    n_jobs: int = 1,
    runner: Optional[ParallelRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 4: fraction of compressed memory lines per benchmark and method.

    Coverage is measured on the new-data side of each trace.  WLC counts a
    line as compressed when all words share the top ``k`` bits; COC when the
    bank compresses it within ``coc_budget_bits``; FPC+BDI when it fits the
    DIN budget.  Each (benchmark, method) cell is an independent task on the
    parallel engine.
    """
    methods: List[Tuple[str, Compressor, int]] = [
        (f"{k}-MSBs", WLCCompressor(k=k), BITS_PER_LINE - 1) for k in wlc_k_values
    ]
    methods.append(("COC", COCCompressor(), coc_budget_bits))
    methods.append(("FPC+BDI", FPCBDICompressor(), din_budget_bits))

    names = list(traces)
    runner = runner or ParallelRunner(n_jobs)
    # Hand starmap the whole trace only when it can actually travel as a
    # transport descriptor (shared memory present, or every trace already
    # corpus-backed); everywhere the engine would fall back to pickling,
    # ship just the new-data batch -- all the cell reads, and half the
    # arrays of the full trace.
    from ..traces.transport import shared_memory_available

    by_descriptor = (
        runner.backend == "process"
        and runner.n_jobs > 1
        and runner.transport != "pickle"
        and (
            shared_memory_available()
            or all(trace.mmap_path is not None for trace in traces.values())
        )
    )
    tasks = [
        (compressor, traces[name] if by_descriptor else traces[name].new, budget)
        for name in names
        for _, compressor, budget in methods
    ]
    values = runner.starmap(_coverage_cell, tasks)

    results: Dict[str, Dict[str, float]] = {}
    for row_index, name in enumerate(names):
        offset = row_index * len(methods)
        results[name] = {
            label: values[offset + column]
            for column, (label, _, _) in enumerate(methods)
        }
    if results:
        results["ave."] = {
            label: float(np.mean([row[label] for row in results.values() if label in row]))
            for label, _, _ in methods
        }
    return results
