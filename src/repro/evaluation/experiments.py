"""Per-figure / per-table experiment drivers.

Each public function reproduces one figure or table of the paper's evaluation
and returns a plain, JSON-serialisable structure (nested dictionaries of
floats) that the benchmark harness prints as a text table.  The functions are
deterministic given an :class:`ExperimentConfig` and share a module-level
result cache so that e.g. Figures 8, 9 and 10 (which differ only in which
metric they read from the same evaluation) do not re-run the simulation.

The trace lengths default to a laptop-friendly size; the paper's 200-million
line runs are unnecessary for the statistics to converge (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..coding import FIGURE8_SCHEMES, make_scheme
from ..coding.ncosets import make_four_cosets, make_six_cosets, make_three_cosets
from ..coding.restricted import RestrictedCosetEncoder
from ..coding.wlc_cosets import make_wlc_four_cosets, make_wlc_three_cosets
from ..coding.wlcrc import WLCRCEncoder
from ..core.config import EvaluationConfig, GRANULARITIES_WLC
from ..core.cosets import FOUR_COSETS, candidate_names
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.metrics import WriteMetrics
from ..workloads.generator import generate_benchmark_trace, generate_random_trace
from ..workloads.profiles import ALL_BENCHMARKS, HMI_BENCHMARKS, LMI_BENCHMARKS
from ..workloads.trace import WriteTrace
from .parallel import WorkUnit, shared_runner
from .sweeps import compression_coverage, energy_level_sweep, granularity_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only (serve layers above this)
    from ..serve.results import ResultStore

#: Granularities of the Figure 1 motivation study.
FIGURE1_GRANULARITIES = (8, 16, 32, 64, 128, 256, 512)
#: Granularities of the Figure 2/3/5 coset comparisons.
FIGURE2_GRANULARITIES = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    #: Write requests per benchmark trace.
    trace_length: int = 4_000
    #: Lines used for the random-workload studies (Figures 1a and 2).
    random_lines: int = 8_000
    #: PRNG seed for trace generation.
    seed: int = 2018
    #: Benchmarks included in the "biased workload" averages.
    benchmarks: Tuple[str, ...] = ALL_BENCHMARKS
    #: Chunk size of the vectorised evaluation.
    chunk_size: int = 2_048
    #: Worker processes of the parallel evaluation engine (1 = serial,
    #: 0/-1 = every core).  Results are identical for any value, so the
    #: experiment caches deliberately ignore it.
    n_jobs: int = 1
    #: Worker-pool backend: ``"process"`` (default) or ``"thread"``.  The
    #: vectorised compression kernels release the GIL, so threads overlap
    #: nearly as well while skipping process start-up and trace export --
    #: pick ``"thread"`` for small sweeps.  Results are bit-identical for
    #: either value, so the experiment caches ignore it too.
    backend: str = "process"
    #: Optional trace-corpus directory (see :class:`repro.traces.store
    #: .TraceCorpus`).  When set, benchmark traces are generated once into
    #: the corpus (content-addressed by profile, length, seed and generator
    #: version) and memory-mapped from disk on every later run, so the
    #: parallel engine ships workers mmap descriptors instead of trace data.
    trace_dir: Optional[str] = None
    #: Optional byte budget of the corpus's generation cache.  When set (and
    #: ``trace_dir`` is used) the least-recently-used cached traces are
    #: evicted after each cache miss so ``cache/`` cannot grow without
    #: bound; ``repro trace gc`` runs the same collection from the CLI.
    trace_cache_budget: Optional[int] = None
    #: Array backend the compression kernels run on (``"numpy"``, ``"numba"``,
    #: ``"cupy"``); ``None`` keeps whatever backend is already active.  Every
    #: backend is bit-identical to the numpy reference, so the experiment
    #: caches ignore it -- like ``n_jobs`` and ``backend``, it only moves
    #: throughput.
    array_backend: Optional[str] = None
    #: Coalesce evaluation chunks into encoder super-batches of at least this
    #: many lines (see :class:`repro.core.config.EvaluationConfig`).  Results
    #: are bit-identical for any value, so the caches ignore it too.
    superbatch_size: Optional[int] = None
    #: Tile size (in lines) of the fused encode+metrics path (see
    #: :class:`repro.core.config.EvaluationConfig`).  Bit-identical to the
    #: materialising path, so the caches ignore it -- it only bounds peak
    #: memory when super-batched chunk groups outgrow one tile.
    fused_tile_lines: Optional[int] = 8192
    #: Optional result-store directory (see :class:`repro.serve.results
    #: .ResultStore`).  When set, every driver fan-out consults the
    #: content-addressed result cache before dispatching and writes misses
    #: back, so repeated figure runs -- and CI shards sharing the directory
    #: -- stop recomputing.  Store hits are bit-identical to fresh
    #: computation, so the in-process experiment caches ignore this knob
    #: like they ignore ``n_jobs``.
    results_dir: Optional[str] = None
    #: Per-task watchdog (seconds) of the parallel engine: a worker task
    #: exceeding it is presumed hung and its pool is rebuilt (see
    #: :class:`~repro.evaluation.parallel.ParallelRunner`).  Recovery is
    #: bit-identical, so the experiment caches ignore this knob too.
    task_timeout: Optional[float] = None

    def results_store(self) -> Optional["ResultStore"]:
        """The configured result store, or ``None`` when memoisation is off."""
        if self.results_dir is None:
            return None
        from ..serve.results import ResultStore

        return ResultStore(self.results_dir)

    @property
    def evaluation(self) -> EvaluationConfig:
        """The corresponding low-level evaluation configuration."""
        return EvaluationConfig(
            trace_length=self.trace_length,
            chunk_size=self.chunk_size,
            seed=self.seed,
            array_backend=self.array_backend,
            superbatch_size=self.superbatch_size,
            fused_tile_lines=self.fused_tile_lines,
        )


DEFAULT_EXPERIMENT_CONFIG = ExperimentConfig()

_CACHE: Dict[Tuple, object] = {}


def clear_cache() -> None:
    """Drop all memoised traces and evaluation results."""
    _CACHE.clear()


def _cached(key: Tuple, builder: Callable[[], object]) -> object:
    if key not in _CACHE:
        _CACHE[key] = builder()
    return _CACHE[key]


def _runner(config: ExperimentConfig):
    """The shared runner for ``config``, with its result store (re)bound.

    Every driver fan-out acquires the pool through this helper, so the
    content-addressed result cache is consulted exactly when the caller's
    config asks for it -- and never leaks into callers that do not.
    """
    return shared_runner(
        config.n_jobs, config.backend, config.results_store(), config.task_timeout
    )


# ---------------------------------------------------------------------- #
# Trace construction
# ---------------------------------------------------------------------- #
def benchmark_traces(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, WriteTrace]:
    """The per-benchmark synthetic traces used by the biased-workload studies.

    Without a ``trace_dir`` the traces are generated in memory (and memoised
    per process); with one they are served memory-mapped from the corpus's
    content-addressed cache, generating only on the first ever run.
    """
    key = ("traces", config.benchmarks, config.trace_length, config.seed, config.trace_dir)

    def build() -> Dict[str, WriteTrace]:
        if config.trace_dir:
            from ..traces.store import TraceCorpus

            corpus = TraceCorpus(
                config.trace_dir, cache_budget_bytes=config.trace_cache_budget
            )
            return {
                name: corpus.get_or_generate(name, config.trace_length, config.seed)
                for name in config.benchmarks
            }
        return {
            name: generate_benchmark_trace(name, config.trace_length, config.seed)
            for name in config.benchmarks
        }

    return _cached(key, build)  # type: ignore[return-value]


def random_trace(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> WriteTrace:
    """The uniformly random trace used by the random-workload studies."""
    key = ("random-trace", config.random_lines, config.seed)
    return _cached(key, lambda: generate_random_trace(config.random_lines, config.seed))  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# Helper aggregations
# ---------------------------------------------------------------------- #
def _aggregate(traces: Mapping[str, WriteTrace], encoder, config: ExperimentConfig) -> WriteMetrics:
    units = [
        WorkUnit("total", encoder, trace, config.evaluation) for trace in traces.values()
    ]
    return _runner(config).run(units).get("total", WriteMetrics())


def _energy_breakdown(metrics: WriteMetrics) -> Dict[str, float]:
    return {
        "blk": metrics.avg_data_energy_pj,
        "aux": metrics.avg_aux_energy_pj,
        "total": metrics.avg_energy_pj,
    }


def _group_average(values: Mapping[str, float], names: Sequence[str]) -> float:
    present = [values[name] for name in names if name in values]
    return float(np.mean(present)) if present else 0.0


# ---------------------------------------------------------------------- #
# Figures 1-5: motivation and coset candidate studies
# ---------------------------------------------------------------------- #
def figure1(
    workload: str = "random", config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG
) -> Dict[int, Dict[str, float]]:
    """Figure 1: 6cosets energy (blk/aux/total) vs granularity, random or biased data."""
    if workload == "random":
        traces: Mapping[str, WriteTrace] = {"random": random_trace(config)}
    elif workload == "biased":
        traces = benchmark_traces(config)
    else:
        raise ValueError("workload must be 'random' or 'biased'")
    sweep = granularity_sweep(
        lambda g, em: make_six_cosets(g, em),
        FIGURE1_GRANULARITIES,
        traces,
        config.evaluation,
        runner=_runner(config),
    )
    return {granularity: _energy_breakdown(metrics) for granularity, metrics in sweep.items()}


def _coset_comparison(
    traces: Mapping[str, WriteTrace],
    config: ExperimentConfig,
    factories: Mapping[str, Callable[[int, EnergyModel], object]],
    granularities: Sequence[int],
) -> Dict[str, Dict[int, Dict[str, float]]]:
    # One fan-out across the whole (family x granularity x trace) cross-product
    # instead of one sweep per family, so every combination runs concurrently.
    units = []
    for label, factory in factories.items():
        for g in granularities:
            encoder = factory(g, DEFAULT_ENERGY_MODEL)
            for trace in traces.values():
                units.append(WorkUnit((label, g), encoder, trace, config.evaluation))
    reduced = _runner(config).run(units)
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for label in factories:
        results[label] = {
            g: _energy_breakdown(reduced.get((label, g), WriteMetrics()))
            for g in granularities
        }
    return results


def figure2(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 2: 6cosets vs 4cosets on random data (aux / blk / total energy)."""
    traces = {"random": random_trace(config)}
    return _coset_comparison(
        traces,
        config,
        {"6cosets": lambda g, em: make_six_cosets(g, em), "4cosets": lambda g, em: make_four_cosets(g, em)},
        FIGURE2_GRANULARITIES,
    )


def figure3(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 3: 6cosets vs 4cosets on the SPEC2006/PARSEC benchmark traces."""
    traces = benchmark_traces(config)
    return _coset_comparison(
        traces,
        config,
        {"6cosets": lambda g, em: make_six_cosets(g, em), "4cosets": lambda g, em: make_four_cosets(g, em)},
        FIGURE2_GRANULARITIES,
    )


def figure4(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[str, float]]:
    """Figure 4: percentage of compressed lines (WLC k=4..9, COC, FPC+BDI) per benchmark."""
    key = ("figure4", config.benchmarks, config.trace_length, config.seed)
    return _cached(
        key,
        lambda: compression_coverage(
            benchmark_traces(config), runner=_runner(config)
        ),
    )  # type: ignore[return-value]


def figure5(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 5: 4cosets vs 3cosets vs restricted 3-r-cosets on the benchmark traces."""
    traces = benchmark_traces(config)
    return _coset_comparison(
        traces,
        config,
        {
            "4cosets": lambda g, em: make_four_cosets(g, em),
            "3cosets": lambda g, em: make_three_cosets(g, em),
            "3-r-cosets": lambda g, em: RestrictedCosetEncoder(g, em),
        },
        FIGURE2_GRANULARITIES,
    )


# ---------------------------------------------------------------------- #
# Table I
# ---------------------------------------------------------------------- #
def table1() -> Dict[str, Dict[str, str]]:
    """Table I: the four proposed coset candidates as state -> symbol mappings."""
    state_names = ("S1", "S2", "S3", "S4")
    bit_patterns = ("00", "01", "10", "11")
    table: Dict[str, Dict[str, str]] = {state: {} for state in state_names}
    for index, candidate in enumerate(FOUR_COSETS):
        name = candidate_names(4)[index]
        for symbol, state in enumerate(candidate):
            table[state_names[state]][name] = bit_patterns[symbol]
    return table


# ---------------------------------------------------------------------- #
# Figures 8-10 and Section VIII-D: full scheme comparison
# ---------------------------------------------------------------------- #
def evaluate_all_schemes(
    config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG,
    schemes: Sequence[str] = FIGURE8_SCHEMES,
) -> Dict[str, Dict[str, WriteMetrics]]:
    """Evaluate every scheme on every benchmark trace (shared by Figures 8-10)."""
    key = ("all-schemes", tuple(schemes), config.benchmarks, config.trace_length, config.seed)

    def build() -> Dict[str, Dict[str, WriteMetrics]]:
        traces = benchmark_traces(config)
        encoders = {scheme_name: make_scheme(scheme_name) for scheme_name in schemes}
        units = [
            WorkUnit((scheme_name, bench), encoders[scheme_name], trace, config.evaluation)
            for scheme_name in schemes
            for bench, trace in traces.items()
        ]
        per_unit = _runner(config).run(units)
        return {
            scheme_name: {
                bench: per_unit[(scheme_name, bench)] for bench in traces
            }
            for scheme_name in schemes
        }

    return _cached(key, build)  # type: ignore[return-value]


def _per_scheme_rows(
    all_metrics: Mapping[str, Mapping[str, WriteMetrics]],
    value: Callable[[WriteMetrics], float],
) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for scheme, per_bench in all_metrics.items():
        row = {bench: value(metrics) for bench, metrics in per_bench.items()}
        row["HMI Ave."] = _group_average(row, HMI_BENCHMARKS)
        row["LMI Ave."] = _group_average(row, LMI_BENCHMARKS)
        row["Ave."] = _group_average(row, list(per_bench.keys()))
        rows[scheme] = row
    return rows


def figure8(
    config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG,
    schemes: Sequence[str] = FIGURE8_SCHEMES,
) -> Dict[str, Dict[str, float]]:
    """Figure 8: average write energy (pJ) per write request, per scheme and benchmark."""
    return _per_scheme_rows(evaluate_all_schemes(config, schemes), lambda m: m.avg_energy_pj)


def figure9(
    config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG,
    schemes: Sequence[str] = FIGURE8_SCHEMES,
) -> Dict[str, Dict[str, float]]:
    """Figure 9: average updated cells per write request (endurance metric)."""
    return _per_scheme_rows(evaluate_all_schemes(config, schemes), lambda m: m.avg_updated_cells)


def figure10(
    config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG,
    schemes: Sequence[str] = FIGURE8_SCHEMES,
) -> Dict[str, Dict[str, float]]:
    """Figure 10: average write-disturbance errors per write request."""
    return _per_scheme_rows(
        evaluate_all_schemes(config, schemes), lambda m: m.avg_disturbance_errors
    )


def section8d_multiobjective(
    config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG,
    threshold: float = 0.01,
) -> Dict[str, Dict[str, float]]:
    """Section VIII-D: multi-objective WLCRC-16 (threshold T) vs plain WLCRC-16."""
    key = ("section8d", threshold, config.benchmarks, config.trace_length, config.seed)

    def build() -> Dict[str, Dict[str, float]]:
        traces = benchmark_traces(config)
        roles = {
            "wlcrc-16": WLCRCEncoder(16),
            "wlcrc-16-mo": WLCRCEncoder(16, endurance_threshold=threshold),
            "baseline": make_scheme("baseline"),
        }
        units = [
            WorkUnit((role, bench), encoder, trace, config.evaluation)
            for bench, trace in traces.items()
            for role, encoder in roles.items()
        ]
        per_unit = _runner(config).run(units)
        rows: Dict[str, Dict[str, float]] = {}
        totals = {role: WriteMetrics() for role in roles}
        for bench in traces:
            plain_metrics = per_unit[("wlcrc-16", bench)]
            multi_metrics = per_unit[("wlcrc-16-mo", bench)]
            base_metrics = per_unit[("baseline", bench)]
            totals["wlcrc-16"].merge(plain_metrics)
            totals["wlcrc-16-mo"].merge(multi_metrics)
            totals["baseline"].merge(base_metrics)
            rows[bench] = {
                "energy_plain": plain_metrics.avg_energy_pj,
                "energy_multi": multi_metrics.avg_energy_pj,
                "cells_plain": plain_metrics.avg_updated_cells,
                "cells_multi": multi_metrics.avg_updated_cells,
            }
        rows["Ave."] = {
            "energy_plain": totals["wlcrc-16"].avg_energy_pj,
            "energy_multi": totals["wlcrc-16-mo"].avg_energy_pj,
            "cells_plain": totals["wlcrc-16"].avg_updated_cells,
            "cells_multi": totals["wlcrc-16-mo"].avg_updated_cells,
            "baseline_energy": totals["baseline"].avg_energy_pj,
            "baseline_cells": totals["baseline"].avg_updated_cells,
        }
        return rows

    return _cached(key, build)  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# Figures 11-13: granularity sensitivity of the WLC-based schemes
# ---------------------------------------------------------------------- #
def _wlc_granularity_metrics(
    config: ExperimentConfig,
) -> Dict[str, Dict[int, WriteMetrics]]:
    key = ("wlc-granularity", config.benchmarks, config.trace_length, config.seed)

    def build() -> Dict[str, Dict[int, WriteMetrics]]:
        traces = benchmark_traces(config)
        families: Dict[str, Callable[[int, EnergyModel], object]] = {
            "4cosets": lambda g, em: make_wlc_four_cosets(g, em),
            "3cosets": lambda g, em: make_wlc_three_cosets(g, em),
            "WLCRC": lambda g, em: WLCRCEncoder(g, em),
        }
        # One fan-out over all (family x granularity x trace) combinations.
        units = []
        for label, factory in families.items():
            for g in GRANULARITIES_WLC:
                encoder = factory(g, DEFAULT_ENERGY_MODEL)
                for trace in traces.values():
                    units.append(WorkUnit((label, g), encoder, trace, config.evaluation))
        reduced = _runner(config).run(units)
        return {
            label: {
                g: reduced.get((label, g), WriteMetrics()) for g in GRANULARITIES_WLC
            }
            for label in families
        }

    return _cached(key, build)  # type: ignore[return-value]


def figure11(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 11: write energy (blk/aux) vs granularity for the WLC-based schemes."""
    metrics = _wlc_granularity_metrics(config)
    return {
        label: {g: _energy_breakdown(m) for g, m in per_granularity.items()}
        for label, per_granularity in metrics.items()
    }


def figure12(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 12: updated cells (blk/aux) vs granularity for the WLC-based schemes."""
    metrics = _wlc_granularity_metrics(config)
    return {
        label: {
            g: {
                "blk": m.avg_updated_data_cells,
                "aux": m.avg_updated_aux_cells,
                "total": m.avg_updated_cells,
            }
            for g, m in per_granularity.items()
        }
        for label, per_granularity in metrics.items()
    }


def figure13(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 13: write-disturbance errors vs granularity for the WLC-based schemes."""
    metrics = _wlc_granularity_metrics(config)
    return {
        label: {g: {"total": m.avg_disturbance_errors} for g, m in per_granularity.items()}
        for label, per_granularity in metrics.items()
    }


# ---------------------------------------------------------------------- #
# Figure 14: sensitivity to the intermediate-state energies
# ---------------------------------------------------------------------- #
def figure14(config: ExperimentConfig = DEFAULT_EXPERIMENT_CONFIG) -> Dict[str, Dict[str, float]]:
    """Figure 14: WLCRC-16 energy improvement over baseline vs S3/S4 write energies."""
    key = ("figure14", config.benchmarks, config.trace_length, config.seed)

    def build() -> Dict[str, Dict[str, float]]:
        traces = benchmark_traces(config)
        sweep = energy_level_sweep(
            factory=lambda em: WLCRCEncoder(16, em),
            baseline_factory=lambda em: make_scheme("baseline", em),
            traces=traces,
            config=config.evaluation,
            runner=_runner(config),
        )
        return {
            f"S3={36 + s3:.0f}pJ / S4={36 + s4:.0f}pJ": values
            for (s3, s4), values in sweep.items()
        }

    return _cached(key, build)  # type: ignore[return-value]
