"""Plain-text reporting helpers for experiment results.

The benchmark harness prints each figure / table as an aligned text table with
the same rows and series the paper reports, so a run of ``pytest benchmarks/
--benchmark-only`` doubles as a regeneration of the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_value(value: Union[Number, str], precision: int = 1) -> str:
    """Format one table cell (numbers get a fixed precision)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.{precision}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Union[Number, str]]],
    precision: int = 1,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    series: Mapping[str, Mapping[str, Number]],
    column_order: Optional[Sequence[str]] = None,
    precision: int = 1,
    title: Optional[str] = None,
    row_header: str = "series",
) -> str:
    """Render a mapping of ``{row: {column: value}}`` as an aligned table."""
    if column_order is None:
        seen: List[str] = []
        for columns in series.values():
            for key in columns:
                if key not in seen:
                    seen.append(key)
        column_order = seen
    headers = [row_header] + list(column_order)
    rows = [
        [row_name] + [columns.get(column, "") for column in column_order]
        for row_name, columns in series.items()
    ]
    return format_table(headers, rows, precision=precision, title=title)


def improvement_percent(baseline: Number, value: Number) -> float:
    """Percent improvement of ``value`` over ``baseline`` (positive = lower/better)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline
