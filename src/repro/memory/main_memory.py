"""End-to-end PCM main-memory model: encoder + controller + device.

:class:`PCMMainMemory` is the convenience facade used by the examples: it
wires a write-encoding scheme into a :class:`~repro.pcm.device.PCMDevice`, a
:class:`~repro.memory.controller.MemoryController`, and exposes simple
``write`` / ``read`` / ``replay_trace`` entry points together with the
aggregate energy / endurance / disturbance statistics.
"""

from __future__ import annotations
from typing import Dict, Union

from ..coding import make_scheme
from ..coding.base import WriteEncoder
from ..core.config import SystemConfig, DEFAULT_SYSTEM_CONFIG
from ..core.line import LineBatch
from ..core.metrics import WriteMetrics
from ..pcm.device import PCMDevice
from ..workloads.trace import WriteTrace
from .controller import MemoryController


class PCMMainMemory:
    """A PCM main memory protected by a configurable write-encoding scheme."""

    def __init__(
        self,
        scheme: Union[str, WriteEncoder] = "wlcrc-16",
        config: SystemConfig = DEFAULT_SYSTEM_CONFIG,
        rows_per_bank: int = 256,
        sample_disturbance: bool = False,
        seed: int = 0,
    ):
        self.config = config
        if isinstance(scheme, str):
            self.encoder: WriteEncoder = make_scheme(scheme, config.energy)
        else:
            self.encoder = scheme
        self.device = PCMDevice(
            self.encoder,
            organization=config.pcm,
            rows_per_bank=rows_per_bank,
            disturbance_model=config.disturbance,
            sample_disturbance=sample_disturbance,
            seed=seed,
        )
        self.controller = MemoryController(self.device, organization=config.pcm)

    # ------------------------------------------------------------------ #
    # Simple synchronous interface
    # ------------------------------------------------------------------ #
    def write(self, line_address: int, data: LineBatch) -> None:
        """Queue a line write and let the controller schedule it."""
        self.controller.enqueue_write(line_address, data)
        self.controller.tick()

    def read(self, line_address: int) -> LineBatch:
        """Read a line (drains queued writes first so the read sees fresh data)."""
        self.controller.drain()
        self.controller.enqueue_read(line_address)
        self.controller.drain()
        # The completed list ends with our read; re-read directly for the data.
        return self.device.read(line_address)

    # ------------------------------------------------------------------ #
    # Trace replay
    # ------------------------------------------------------------------ #
    def replay_trace(self, trace: WriteTrace, base_address: int = 0) -> WriteMetrics:
        """Replay a write trace through the controller and return the metrics.

        When the trace carries addresses they are used directly (so repeated
        writes to the same line hit the same stored cells); otherwise requests
        are laid out sequentially from ``base_address``.
        """
        for index in range(len(trace)):
            if trace.addresses is not None:
                address = int(trace.addresses[index])
            else:
                address = base_address + index
            self.controller.enqueue_write(address, trace.new[index])
            self.controller.tick()
        self.controller.drain()
        return self.metrics()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def metrics(self) -> WriteMetrics:
        """Aggregate write metrics accumulated by the device."""
        return self.device.total_metrics()

    def summary(self) -> Dict[str, float]:
        """Human-readable summary used by the examples."""
        metrics = self.metrics()
        stats = self.controller.stats
        return {
            "scheme": self.encoder.name,
            "writes": stats.writes_serviced,
            "reads": stats.reads_serviced,
            "avg_write_energy_pj": metrics.avg_energy_pj,
            "avg_updated_cells": metrics.avg_updated_cells,
            "avg_disturbance_errors": metrics.avg_disturbance_errors,
            "compressed_fraction": metrics.compressed_fraction,
            "avg_read_latency_cycles": stats.avg_read_latency,
            "avg_write_latency_cycles": stats.avg_write_latency,
            "max_cell_wear": self.device.max_cell_wear(),
        }
