"""Memory-request types used by the memory controller."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..core.line import LineBatch


class RequestType(Enum):
    """Kind of memory transaction."""

    READ = "read"
    WRITE = "write"


@dataclass
class MemoryRequest:
    """One line-sized memory transaction.

    Attributes
    ----------
    type:
        Read or write.
    line_address:
        Line-granularity physical address (byte address / 64).
    data:
        Line payload for writes (``None`` for reads).
    issue_cycle:
        Controller cycle at which the request entered the queue.
    complete_cycle:
        Cycle at which the request finished service (filled by the controller).
    """

    type: RequestType
    line_address: int
    data: Optional[LineBatch] = None
    issue_cycle: int = 0
    complete_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.type is RequestType.WRITE and self.data is None:
            raise ValueError("write requests must carry data")
        if self.line_address < 0:
            raise ValueError("line_address must be non-negative")

    @property
    def is_write(self) -> bool:
        """``True`` for write-back requests."""
        return self.type is RequestType.WRITE

    @property
    def latency(self) -> Optional[int]:
        """Queue + service latency in controller cycles, once completed."""
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle
