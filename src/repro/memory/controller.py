"""Memory controller with split read/write queues and write pausing.

The controller follows the policy described in Table II and Section VII-A of
the paper:

* reads are served with priority over writes (reads are latency-critical,
  writes are posted);
* when the write queue fills beyond a high-water mark (80 % of its 32
  entries), writes are drained ahead of reads to avoid starvation;
* every write goes through the active encoding scheme and differential write
  at the PCM device.

The timing model is deliberately simple (fixed read/write service latencies
expressed in controller cycles) -- the paper's results are per-write-request
energy/endurance statistics, which do not depend on cycle-accurate DRAM-style
timing, but the queueing behaviour lets examples study how write-energy
reduction translates into queue pressure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..core.config import PCMOrganization
from ..core.errors import SimulationError
from ..core.line import LineBatch
from ..core.metrics import WriteMetrics
from ..pcm.device import PCMDevice
from .request import MemoryRequest, RequestType

#: Service latency of a read, in controller cycles.
DEFAULT_READ_LATENCY = 4
#: Service latency of a write (iterative program-and-verify), in controller cycles.
DEFAULT_WRITE_LATENCY = 16


@dataclass
class ControllerStatistics:
    """Counters accumulated by the controller."""

    reads_serviced: int = 0
    writes_serviced: int = 0
    read_latency_total: int = 0
    write_latency_total: int = 0
    write_pause_drains: int = 0
    stalled_writes: int = 0

    @property
    def avg_read_latency(self) -> float:
        """Average read latency in cycles."""
        return self.read_latency_total / self.reads_serviced if self.reads_serviced else 0.0

    @property
    def avg_write_latency(self) -> float:
        """Average write latency in cycles."""
        return self.write_latency_total / self.writes_serviced if self.writes_serviced else 0.0


class MemoryController:
    """Read-priority controller with write pausing over a PCM device."""

    def __init__(
        self,
        device: PCMDevice,
        organization: PCMOrganization = PCMOrganization(),
        read_latency: int = DEFAULT_READ_LATENCY,
        write_latency: int = DEFAULT_WRITE_LATENCY,
    ):
        self.device = device
        self.organization = organization
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_queue: Deque[MemoryRequest] = deque()
        self.write_queue: Deque[MemoryRequest] = deque()
        self.cycle = 0
        self.stats = ControllerStatistics()
        self.completed: List[MemoryRequest] = []

    # ------------------------------------------------------------------ #
    # Enqueue
    # ------------------------------------------------------------------ #
    @property
    def write_queue_limit(self) -> int:
        """Capacity of the write queue (Table II: 32 entries)."""
        return self.organization.write_queue_entries

    @property
    def write_queue_high_watermark(self) -> int:
        """Occupancy at which writes are drained ahead of reads."""
        return int(self.write_queue_limit * self.organization.write_queue_high_watermark)

    def enqueue_read(self, line_address: int) -> MemoryRequest:
        """Queue a read request."""
        request = MemoryRequest(RequestType.READ, line_address, issue_cycle=self.cycle)
        self.read_queue.append(request)
        return request

    def enqueue_write(self, line_address: int, data: LineBatch) -> MemoryRequest:
        """Queue a write-back request; stalls (services writes) if the queue is full."""
        while len(self.write_queue) >= self.write_queue_limit:
            self.stats.stalled_writes += 1
            self._service_one_write()
        request = MemoryRequest(RequestType.WRITE, line_address, data=data, issue_cycle=self.cycle)
        self.write_queue.append(request)
        return request

    # ------------------------------------------------------------------ #
    # Service
    # ------------------------------------------------------------------ #
    def _service_one_read(self) -> Optional[LineBatch]:
        if not self.read_queue:
            return None
        request = self.read_queue.popleft()
        data = self.device.read(request.line_address)
        self.cycle += self.read_latency
        request.complete_cycle = self.cycle
        self.stats.reads_serviced += 1
        self.stats.read_latency_total += request.latency or 0
        self.completed.append(request)
        return data

    def _service_one_write(self) -> Optional[WriteMetrics]:
        if not self.write_queue:
            return None
        request = self.write_queue.popleft()
        if request.data is None:
            raise SimulationError("write request without data")
        metrics = self.device.write(request.line_address, request.data)
        self.cycle += self.write_latency
        request.complete_cycle = self.cycle
        self.stats.writes_serviced += 1
        self.stats.write_latency_total += request.latency or 0
        self.completed.append(request)
        return metrics

    def tick(self) -> None:
        """Advance the controller by one scheduling decision.

        Reads are served first unless the write queue is above its high-water
        mark, in which case writes are drained (write pausing / forced drain).
        """
        if len(self.write_queue) >= self.write_queue_high_watermark and self.write_queue:
            self.stats.write_pause_drains += 1
            self._service_one_write()
        elif self.read_queue:
            self._service_one_read()
        elif self.write_queue:
            self._service_one_write()
        else:
            self.cycle += 1

    def drain(self) -> None:
        """Service every outstanding request."""
        while self.read_queue or self.write_queue:
            self.tick()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def write_metrics(self) -> WriteMetrics:
        """Aggregate per-write metrics of everything the device has written."""
        return self.device.total_metrics()
