"""Memory-controller substrate and the end-to-end PCM main-memory facade."""

from .controller import (
    ControllerStatistics,
    DEFAULT_READ_LATENCY,
    DEFAULT_WRITE_LATENCY,
    MemoryController,
)
from .main_memory import PCMMainMemory
from .request import MemoryRequest, RequestType

__all__ = [
    "ControllerStatistics",
    "DEFAULT_READ_LATENCY",
    "DEFAULT_WRITE_LATENCY",
    "MemoryController",
    "MemoryRequest",
    "PCMMainMemory",
    "RequestType",
]
