"""Endurance (lifetime) analysis helpers.

PCM cells wear out after a bounded number of RESET operations.  The paper uses
*average updated cells per write request* as its endurance proxy (Figure 9);
this module adds the conversion from wear statistics to expected lifetime so
the device-level simulation can report lifetime estimates as well.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Typical per-cell write endurance of PCM (writes before failure).
DEFAULT_CELL_ENDURANCE_WRITES = 10**8


@dataclass(frozen=True)
class LifetimeEstimate:
    """Result of an endurance projection."""

    writes_per_second: float
    updated_cells_per_write: float
    cells_per_line: int
    cell_endurance_writes: int
    wear_leveling_efficiency: float

    @property
    def line_writes_to_failure(self) -> float:
        """Writes a single line sustains before its most-worn cell fails."""
        if self.updated_cells_per_write <= 0:
            return float("inf")
        per_cell_rate = self.updated_cells_per_write / self.cells_per_line
        return self.cell_endurance_writes / per_cell_rate * self.wear_leveling_efficiency

    @property
    def lifetime_seconds(self) -> float:
        """Expected time to first-line failure under the given write rate."""
        if self.writes_per_second <= 0:
            return float("inf")
        return self.line_writes_to_failure / self.writes_per_second

    @property
    def lifetime_years(self) -> float:
        """Lifetime in years."""
        return self.lifetime_seconds / (365.25 * 24 * 3600)


def estimate_lifetime(
    updated_cells_per_write: float,
    writes_per_second: float = 1e6,
    cells_per_line: int = 257,
    cell_endurance_writes: int = DEFAULT_CELL_ENDURANCE_WRITES,
    wear_leveling_efficiency: float = 0.9,
) -> LifetimeEstimate:
    """Project a lifetime estimate from the Figure 9 endurance metric.

    The projection assumes writes are spread over the line's cells in
    proportion to the measured updated-cells average and that a wear-levelling
    layer achieves ``wear_leveling_efficiency`` of the ideal spread.
    """
    if updated_cells_per_write < 0:
        raise ValueError("updated_cells_per_write must be non-negative")
    if not 0 < wear_leveling_efficiency <= 1:
        raise ValueError("wear_leveling_efficiency must be in (0, 1]")
    return LifetimeEstimate(
        writes_per_second=writes_per_second,
        updated_cells_per_write=updated_cells_per_write,
        cells_per_line=cells_per_line,
        cell_endurance_writes=cell_endurance_writes,
        wear_leveling_efficiency=wear_leveling_efficiency,
    )


def relative_lifetime(baseline_updated_cells: float, scheme_updated_cells: float) -> float:
    """Lifetime of a scheme relative to a baseline (higher is better).

    Lifetime is inversely proportional to the number of updated cells per
    write, so a 20 % reduction in updated cells is a 1.25x lifetime gain.
    """
    if scheme_updated_cells <= 0:
        return float("inf")
    return baseline_updated_cells / scheme_updated_cells
