"""PCM bank: a stateful array of memory lines with per-cell wear tracking.

A bank stores, for every line it holds, the actual cell states written by the
last write request (including any auxiliary cells the active encoding scheme
uses).  This is the stateful counterpart of the trace-driven evaluation path:
instead of reconstructing the old stored states from the old data value, the
bank remembers exactly what was written, so repeated writes to the same
address exercise the true differential-write behaviour, the per-cell wear
counters accumulate, and disturbance / verify-and-restore can be modelled
against real neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..coding.base import WriteEncoder
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.errors import SimulationError
from ..core.line import LineBatch
from ..core.metrics import WriteMetrics


@dataclass
class BankStatistics:
    """Aggregate statistics of one bank."""

    writes: int = 0
    reads: int = 0
    disturbance_events: int = 0
    restore_iterations: int = 0


class PCMBank:
    """A bank of PCM lines driven by a write-encoding scheme.

    Parameters
    ----------
    encoder:
        The write-encoding scheme used for every line stored in this bank.
    lines:
        Number of line slots the bank exposes (line index = row address).
    disturbance_model:
        Disturbance-rate model used when ``sample_disturbance`` is enabled.
    sample_disturbance:
        When ``True`` the bank Monte-Carlo samples disturbance faults on every
        write and relies on verify-and-restore to repair them.
    seed:
        Seed of the bank's private PRNG (used only for disturbance sampling).
    """

    def __init__(
        self,
        encoder: WriteEncoder,
        lines: int = 1024,
        disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
        sample_disturbance: bool = False,
        seed: int = 0,
    ):
        if lines <= 0:
            raise SimulationError("a bank must have at least one line")
        self.encoder = encoder
        self.num_lines = lines
        self.disturbance_model = disturbance_model
        self.sample_disturbance = sample_disturbance
        self.rng = np.random.default_rng(seed)
        cells = encoder.total_cells
        #: Stored cell states; fresh cells start in the RESET state S1.
        self.states = np.zeros((lines, cells), dtype=np.uint8)
        #: Per-cell write (RESET) counters used for endurance analysis.
        self.wear = np.zeros((lines, cells), dtype=np.int64)
        self.written = np.zeros(lines, dtype=bool)
        self.stats = BankStatistics()
        self.metrics = WriteMetrics()

    # ------------------------------------------------------------------ #
    # Address handling
    # ------------------------------------------------------------------ #
    def _check_row(self, row: int) -> int:
        if not 0 <= row < self.num_lines:
            raise SimulationError(f"row {row} out of range (bank has {self.num_lines} lines)")
        return int(row)

    # ------------------------------------------------------------------ #
    # Write / read path
    # ------------------------------------------------------------------ #
    def write_line(self, row: int, data: LineBatch) -> WriteMetrics:
        """Encode and write one line; returns the metrics of this single write."""
        from ..evaluation.runner import metrics_from_encoded

        row = self._check_row(row)
        if len(data) != 1:
            raise SimulationError("write_line expects a single-line batch")
        stored = self.states[row:row + 1]
        encoded = self.encoder.encode_against_stored(data, stored)
        rng = self.rng if self.sample_disturbance else None
        metrics = metrics_from_encoded(encoded, self.encoder, self.disturbance_model, rng)

        changed = encoded.changed[0]
        self.wear[row] += changed
        self.states[row] = encoded.states[0]
        if self.sample_disturbance:
            faults = self.disturbance_model.sample_errors(
                encoded.old_states, encoded.changed, self.rng
            )[0]
            if faults.any():
                self.stats.disturbance_events += int(faults.sum())
                # Disturbance drives idle cells toward the SET state (S2).
                disturbed = self.states[row].copy()
                disturbed[faults] = 1
                self.stats.restore_iterations += self._verify_and_restore(row, encoded.states[0], disturbed)
        self.written[row] = True
        self.stats.writes += 1
        self.metrics.merge(metrics)
        return metrics

    def _verify_and_restore(self, row: int, intended: np.ndarray, observed: np.ndarray) -> int:
        """Iteratively rewrite disturbed cells until the line matches the intent.

        Returns the number of verify-and-restore iterations performed.  The
        paper cites 3-5 iterations as sufficient; the loop is bounded at 5.
        """
        iterations = 0
        current = observed.copy()
        while not np.array_equal(current, intended) and iterations < 5:
            wrong = current != intended
            self.wear[row] += wrong
            current[wrong] = intended[wrong]
            iterations += 1
            if self.sample_disturbance:
                faults = self.disturbance_model.sample_errors(
                    current[None, :], wrong[None, :], self.rng
                )[0]
                current[faults] = 1
        self.states[row] = current
        return iterations

    def read_line(self, row: int) -> LineBatch:
        """Decode and return the data stored at ``row``."""
        row = self._check_row(row)
        if not self.written[row]:
            return LineBatch.zeros(1)
        self.stats.reads += 1
        return self.encoder.decode_states(self.states[row:row + 1])

    # ------------------------------------------------------------------ #
    # Endurance reporting
    # ------------------------------------------------------------------ #
    def max_cell_wear(self) -> int:
        """Highest per-cell write count in the bank (lifetime-limiting cell)."""
        return int(self.wear.max()) if self.wear.size else 0

    def mean_cell_wear(self) -> float:
        """Average per-cell write count across the bank."""
        return float(self.wear.mean()) if self.wear.size else 0.0

    def wear_histogram(self, bins: int = 16) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of per-cell write counts (for wear-levelling studies)."""
        return np.histogram(self.wear.reshape(-1), bins=bins)
