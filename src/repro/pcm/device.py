"""PCM main-memory device: channels, DIMMs and banks (Table II organisation).

The device maps physical line addresses onto banks using the usual
channel/DIMM/bank interleaving and forwards line writes and reads to the
per-bank :class:`~repro.pcm.bank.PCMBank` instances.  Only a bounded number of
line slots per bank is simulated (a set-associative "window" over the huge
physical space) so the device stays laptop-sized while still exercising
repeated writes to hot lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..coding.base import WriteEncoder
from ..core.config import PCMOrganization
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.errors import SimulationError
from ..core.line import LineBatch
from ..core.metrics import WriteMetrics
from .bank import PCMBank


@dataclass(frozen=True)
class BankAddress:
    """Decomposition of a line address into the device topology."""

    channel: int
    dimm: int
    bank: int
    row: int

    @property
    def flat_bank(self) -> Tuple[int, int, int]:
        """The (channel, dimm, bank) triple identifying the physical bank."""
        return (self.channel, self.dimm, self.bank)


class PCMDevice:
    """A multi-channel PCM main memory built from :class:`PCMBank` instances."""

    def __init__(
        self,
        encoder: WriteEncoder,
        organization: PCMOrganization = PCMOrganization(),
        rows_per_bank: int = 256,
        disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
        sample_disturbance: bool = False,
        seed: int = 0,
    ):
        if rows_per_bank <= 0:
            raise SimulationError("rows_per_bank must be positive")
        self.encoder = encoder
        self.organization = organization
        self.rows_per_bank = rows_per_bank
        self._banks: Dict[Tuple[int, int, int], PCMBank] = {}
        self._disturbance_model = disturbance_model
        self._sample_disturbance = sample_disturbance
        self._seed = seed
        #: Tracks which physical row each simulated bank slot currently holds.
        self._row_tags: Dict[Tuple[int, int, int], Dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def decode_address(self, line_address: int) -> BankAddress:
        """Map a line address to (channel, dimm, bank, row) by interleaving."""
        if line_address < 0:
            raise SimulationError("line addresses must be non-negative")
        org = self.organization
        channel = line_address % org.channels
        rest = line_address // org.channels
        dimm = rest % org.dimms_per_channel
        rest //= org.dimms_per_channel
        bank = rest % org.banks_per_dimm
        row = rest // org.banks_per_dimm
        return BankAddress(channel=channel, dimm=dimm, bank=bank, row=row)

    def _bank_for(self, address: BankAddress) -> PCMBank:
        key = address.flat_bank
        if key not in self._banks:
            bank_seed = (self._seed, address.channel, address.dimm, address.bank)
            self._banks[key] = PCMBank(
                self.encoder,
                lines=self.rows_per_bank,
                disturbance_model=self._disturbance_model,
                sample_disturbance=self._sample_disturbance,
                seed=abs(hash(bank_seed)) % (2**31),
            )
            self._row_tags[key] = {}
        return self._banks[key]

    def _slot_for(self, address: BankAddress) -> int:
        """Direct-mapped slot of the physical row inside the simulated bank window."""
        key = address.flat_bank
        slot = address.row % self.rows_per_bank
        tags = self._row_tags.setdefault(key, {})
        if tags.get(slot) != address.row:
            # A different physical row occupied this slot: reset its content so
            # the new row starts from fresh (RESET) cells.
            bank = self._bank_for(address)
            bank.states[slot] = 0
            bank.written[slot] = False
            tags[slot] = address.row
        return slot

    # ------------------------------------------------------------------ #
    # Line access
    # ------------------------------------------------------------------ #
    def write(self, line_address: int, data: LineBatch) -> WriteMetrics:
        """Write one 64-byte line and return the write metrics."""
        address = self.decode_address(line_address)
        bank = self._bank_for(address)
        slot = self._slot_for(address)
        return bank.write_line(slot, data)

    def read(self, line_address: int) -> LineBatch:
        """Read (and decode) one 64-byte line."""
        address = self.decode_address(line_address)
        bank = self._bank_for(address)
        slot = self._slot_for(address)
        return bank.read_line(slot)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def banks_in_use(self) -> int:
        """Number of banks that have been touched so far."""
        return len(self._banks)

    def total_metrics(self) -> WriteMetrics:
        """Aggregate write metrics across all banks."""
        return WriteMetrics.combine(bank.metrics for bank in self._banks.values())

    def max_cell_wear(self) -> int:
        """Highest per-cell write count across the device."""
        return max((bank.max_cell_wear() for bank in self._banks.values()), default=0)
