"""Stateful MLC PCM device substrate: cells, banks, device topology, endurance."""

from .bank import BankStatistics, PCMBank
from .cell import PCMCell
from .device import BankAddress, PCMDevice
from .endurance import (
    DEFAULT_CELL_ENDURANCE_WRITES,
    LifetimeEstimate,
    estimate_lifetime,
    relative_lifetime,
)

__all__ = [
    "BankAddress",
    "BankStatistics",
    "DEFAULT_CELL_ENDURANCE_WRITES",
    "LifetimeEstimate",
    "PCMBank",
    "PCMCell",
    "PCMDevice",
    "estimate_lifetime",
    "relative_lifetime",
]
