"""Single MLC PCM cell model.

The cell model is mostly used for documentation, unit tests and small-scale
studies; the bank/device models operate on vectorised state arrays for speed.
A 4-level cell stores one of the states ``S1..S4`` (represented as integers
``0..3``); programming a new state is modelled as the paper describes it: a
RESET pulse (which costs the RESET energy and wears the cell) followed by SET
pulses whose energy depends on the target state.  Differential write skips the
programming entirely when the stored state already matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel, NUM_STATES
from ..core.errors import SimulationError


@dataclass
class PCMCell:
    """One 4-level PCM cell with a stored state and a wear counter."""

    state: int = 0
    writes: int = 0
    energy_model: EnergyModel = field(default_factory=lambda: DEFAULT_ENERGY_MODEL)

    def __post_init__(self) -> None:
        if not 0 <= self.state < NUM_STATES:
            raise SimulationError(f"invalid cell state {self.state}")

    def program(self, new_state: int, differential: bool = True) -> float:
        """Program the cell to ``new_state`` and return the energy spent (pJ).

        With ``differential=True`` (the default, matching the paper's
        assumption of differential write) nothing happens when the stored
        state already equals the target state.
        """
        if not 0 <= new_state < NUM_STATES:
            raise SimulationError(f"invalid target state {new_state}")
        if differential and new_state == self.state:
            return 0.0
        self.state = int(new_state)
        self.writes += 1
        return float(self.energy_model.write_energy_per_state[new_state])

    def disturb(self) -> None:
        """Apply a write-disturbance fault: the cell drifts to the SET state.

        Disturbance is unidirectional (it can only lower the resistance), so
        the cell lands in the lowest-resistance state S2.
        """
        self.state = 1

    @property
    def is_disturb_immune(self) -> bool:
        """Cells already in the lowest-resistance state cannot be disturbed."""
        return self.state == 1
